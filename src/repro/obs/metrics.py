"""Lock-cheap metrics primitives and the process-wide metrics registry.

Three Prometheus-shaped instrument types cover everything the serving stack
counts:

* :class:`Counter` — a monotone total (queries served, cache hits, rejected
  requests).  Incrementing takes one small lock, so concurrent readers and
  executor threads never lose counts.
* :class:`Gauge` — a value that goes up and down (queue depth, in-flight
  coalesced executions) or is computed at scrape time via
  :meth:`Gauge.set_function` (cache occupancy, shard staleness).
* :class:`Histogram` — a fixed-bucket latency distribution with exact
  ``sum`` / ``count`` and p50 / p95 / p99 estimated by linear interpolation
  inside the owning bucket, so a long-running server's latency telemetry
  costs O(buckets) memory yet still yields usable tail percentiles.

The :class:`MetricsRegistry` owns metric *families* (one HELP / TYPE pair
per name) and hands out label-addressed children.  Hot paths are expected to
look a child up once and keep the handle — after that, recording an
observation is one lock plus one arithmetic op, and the disabled fast path
(:class:`NullRegistry`, used by ``Observability.disabled()``) reduces every
call to an attribute access on a shared no-op singleton.
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_left
from typing import Callable, Iterable, Mapping, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullCounter",
    "NullGauge",
    "NullHistogram",
    "NullRegistry",
    "DEFAULT_LATENCY_BUCKETS",
    "validate_metric_name",
    "validate_label_name",
]

#: Exponential latency buckets (seconds) from 10 microseconds to 10 seconds,
#: wide enough for both a cache hit and a cold multi-shard scatter-gather.
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    0.00001,
    0.000025,
    0.00005,
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)

_NAME_CHARS = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_:")
_LABEL_CHARS = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_")


def validate_metric_name(name: str) -> str:
    """Validate a Prometheus metric name; returns it unchanged."""
    if not name or name[0].isdigit() or not set(name) <= _NAME_CHARS:
        raise ValueError(f"invalid metric name {name!r}")
    return name


def validate_label_name(name: str) -> str:
    """Validate a Prometheus label name; returns it unchanged."""
    if (
        not name
        or name[0].isdigit()
        or name.startswith("__")
        or not set(name) <= _LABEL_CHARS
    ):
        raise ValueError(f"invalid label name {name!r}")
    return name


def _frozen_labels(labels: Mapping[str, str] | None) -> tuple[tuple[str, str], ...]:
    if not labels:
        return ()
    return tuple(
        (validate_label_name(key), str(value)) for key, value in sorted(labels.items())
    )


class Counter:
    """A monotone counter; ``inc`` is thread-safe and rejects negative deltas."""

    __slots__ = ("name", "labels", "_value", "_function", "_lock")

    def __init__(self, name: str, labels: Mapping[str, str] | None = None) -> None:
        self.name = validate_metric_name(name)
        self.labels = _frozen_labels(labels)
        self._value = 0.0
        self._function: Callable[[], float] | None = None
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        """Add a non-negative amount to the counter."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (got {amount})")
        with self._lock:
            self._value += amount

    def set_function(self, function: Callable[[], float] | None) -> None:
        """Read the total from a callback at scrape time.

        The hot-path alternative to per-event ``inc``: when a layer already
        maintains its own monotone tally (e.g. the coalescer's join count),
        mirroring it lazily costs the hot path nothing.  The callback must be
        monotone non-decreasing to keep Prometheus counter semantics.
        """
        self._function = function

    @property
    def value(self) -> float:
        """The current total (evaluating the callback when one is set)."""
        function = self._function
        if function is not None:
            return float(function())
        return self._value


class Gauge:
    """A settable value, optionally computed at read time by a callback."""

    __slots__ = ("name", "labels", "_value", "_function", "_lock")

    def __init__(self, name: str, labels: Mapping[str, str] | None = None) -> None:
        self.name = validate_metric_name(name)
        self.labels = _frozen_labels(labels)
        self._value = 0.0
        self._function: Callable[[], float] | None = None
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        """Set the gauge to an absolute value."""
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (may be negative)."""
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Subtract ``amount``."""
        self.inc(-amount)

    def set_function(self, function: Callable[[], float] | None) -> None:
        """Compute the gauge at read time (scrape-time cache sizes etc.)."""
        self._function = function

    @property
    def value(self) -> float:
        """The current value (evaluating the callback when one is set)."""
        function = self._function
        if function is not None:
            return float(function())
        return self._value


class Histogram:
    """A fixed-bucket histogram with interpolated percentiles.

    ``buckets`` are the finite upper bounds (ascending); an implicit +Inf
    bucket catches the overflow.  ``observe`` locates the bucket by binary
    search, so recording costs O(log buckets) with one small lock.
    """

    __slots__ = ("name", "labels", "buckets", "_counts", "_sum", "_count", "_lock")

    def __init__(
        self,
        name: str,
        labels: Mapping[str, str] | None = None,
        buckets: Sequence[float] | None = None,
    ) -> None:
        self.name = validate_metric_name(name)
        self.labels = _frozen_labels(labels)
        bounds = tuple(float(b) for b in (buckets or DEFAULT_LATENCY_BUCKETS))
        if not bounds or any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError("buckets must be non-empty and strictly ascending")
        self.buckets = bounds
        self._counts = [0] * (len(bounds) + 1)  # final slot is +Inf
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Record one observation."""
        index = bisect_left(self.buckets, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    def observe_n(self, value: float, n: int) -> None:
        """Record ``n`` identical observations in one lock acquisition.

        The batch execution path attributes one amortized per-query latency
        to every miss in a sealed window; folding the whole window into one
        bucket update keeps histogram cost per *batch* instead of per query.
        """
        if n <= 0:
            return
        index = bisect_left(self.buckets, value)
        with self._lock:
            self._counts[index] += n
            self._sum += value * n
            self._count += n

    @property
    def count(self) -> int:
        """Total observations."""
        return self._count

    @property
    def sum(self) -> float:
        """Sum of all observations."""
        return self._sum

    def bucket_counts(self) -> list[int]:
        """Per-bucket (non-cumulative) counts; the last entry is +Inf."""
        with self._lock:
            return list(self._counts)

    def quantile(self, q: float) -> float:
        """The ``q``-quantile estimated by linear bucket interpolation.

        The rank is located in the cumulative bucket counts and the answer
        interpolated linearly inside the owning bucket ``(lower, upper]``;
        observations in the +Inf bucket clamp to the largest finite bound.
        NaN before any observation.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            total = self._count
            if total == 0:
                return float("nan")
            counts = list(self._counts)
        rank = q * total
        cumulative = 0.0
        for index, bucket_count in enumerate(counts):
            previous = cumulative
            cumulative += bucket_count
            if cumulative >= rank and bucket_count:
                if index >= len(self.buckets):
                    return self.buckets[-1]
                lower = self.buckets[index - 1] if index else 0.0
                upper = self.buckets[index]
                fraction = (rank - previous) / bucket_count
                return lower + (upper - lower) * min(max(fraction, 0.0), 1.0)
        return self.buckets[-1]

    def percentiles(self) -> tuple[float, float, float]:
        """The (p50, p95, p99) triple from bucket interpolation."""
        return self.quantile(0.50), self.quantile(0.95), self.quantile(0.99)


class NullCounter:
    """No-op counter for the disabled fast path."""

    __slots__ = ()
    name = "null"
    labels: tuple[tuple[str, str], ...] = ()
    value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Discard the increment."""

    def set_function(self, function: Callable[[], float] | None) -> None:
        """Discard the callback."""


class NullGauge:
    """No-op gauge for the disabled fast path."""

    __slots__ = ()
    name = "null"
    labels: tuple[tuple[str, str], ...] = ()
    value = 0.0

    def set(self, value: float) -> None:
        """Discard the value."""

    def inc(self, amount: float = 1.0) -> None:
        """Discard the increment."""

    def dec(self, amount: float = 1.0) -> None:
        """Discard the decrement."""

    def set_function(self, function: Callable[[], float] | None) -> None:
        """Discard the callback."""


class NullHistogram:
    """No-op histogram for the disabled fast path."""

    __slots__ = ()
    name = "null"
    labels: tuple[tuple[str, str], ...] = ()
    buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS
    count = 0
    sum = 0.0

    def observe(self, value: float) -> None:
        """Discard the observation."""

    def observe_n(self, value: float, n: int) -> None:
        """Discard the observations."""

    def bucket_counts(self) -> list[int]:
        """An all-zero bucket vector."""
        return [0] * (len(self.buckets) + 1)

    def quantile(self, q: float) -> float:
        """NaN: nothing was recorded."""
        return float("nan")

    def percentiles(self) -> tuple[float, float, float]:
        """NaN triple: nothing was recorded."""
        nan = float("nan")
        return nan, nan, nan


_TYPE_COUNTER = "counter"
_TYPE_GAUGE = "gauge"
_TYPE_HISTOGRAM = "histogram"


class MetricFamily:
    """One named metric family: HELP text, type, and label-addressed children."""

    __slots__ = ("name", "help", "type", "buckets", "children")

    def __init__(
        self,
        name: str,
        help_text: str,
        metric_type: str,
        buckets: tuple[float, ...] | None = None,
    ) -> None:
        self.name = name
        self.help = help_text
        self.type = metric_type
        self.buckets = buckets
        self.children: dict[tuple[tuple[str, str], ...], object] = {}


class MetricsRegistry:
    """The process-wide home of every metric family.

    Families are created on first use (``counter`` / ``gauge`` /
    ``histogram``); asking again with the same name returns the existing
    child for the label set, and asking with a conflicting type raises, so a
    metric name can never be exported with two meanings.
    """

    def __init__(self) -> None:
        self._families: dict[str, MetricFamily] = {}
        self._lock = threading.Lock()

    def counter(
        self, name: str, help_text: str = "", labels: Mapping[str, str] | None = None
    ) -> Counter:
        """The counter child for ``(name, labels)``, creating it on first use."""
        return self._child(name, help_text, _TYPE_COUNTER, labels, None)  # type: ignore[return-value]

    def gauge(
        self, name: str, help_text: str = "", labels: Mapping[str, str] | None = None
    ) -> Gauge:
        """The gauge child for ``(name, labels)``, creating it on first use."""
        return self._child(name, help_text, _TYPE_GAUGE, labels, None)  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labels: Mapping[str, str] | None = None,
        buckets: Sequence[float] | None = None,
    ) -> Histogram:
        """The histogram child for ``(name, labels)``, creating it on first use."""
        bounds = tuple(float(b) for b in (buckets or DEFAULT_LATENCY_BUCKETS))
        return self._child(name, help_text, _TYPE_HISTOGRAM, labels, bounds)  # type: ignore[return-value]

    def _child(
        self,
        name: str,
        help_text: str,
        metric_type: str,
        labels: Mapping[str, str] | None,
        buckets: tuple[float, ...] | None,
    ) -> object:
        validate_metric_name(name)
        key = _frozen_labels(labels)
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = MetricFamily(name, help_text, metric_type, buckets)
                self._families[name] = family
            elif family.type != metric_type:
                raise ValueError(
                    f"metric {name!r} is a {family.type}, requested {metric_type}"
                )
            elif buckets is not None and family.buckets != buckets:
                raise ValueError(f"histogram {name!r} re-requested with other buckets")
            child = family.children.get(key)
            if child is None:
                if metric_type == _TYPE_COUNTER:
                    child = Counter(name, dict(key))
                elif metric_type == _TYPE_GAUGE:
                    child = Gauge(name, dict(key))
                else:
                    child = Histogram(name, dict(key), buckets)
                family.children[key] = child
            return child

    def families(self) -> list[MetricFamily]:
        """Every registered family, sorted by name (the exposition order)."""
        with self._lock:
            return [self._families[name] for name in sorted(self._families)]

    def get(self, name: str) -> MetricFamily | None:
        """The family registered under ``name``, or None."""
        with self._lock:
            return self._families.get(name)

    def snapshot(self) -> dict[str, dict]:
        """A JSON-ready view of every family (histograms with percentiles)."""
        result: dict[str, dict] = {}
        for family in self.families():
            samples = []
            for labels, child in sorted(family.children.items()):
                entry: dict[str, object] = {"labels": dict(labels)}
                if family.type == _TYPE_HISTOGRAM:
                    histogram = child
                    assert isinstance(histogram, Histogram)
                    p50, p95, p99 = histogram.percentiles()
                    entry.update(
                        count=histogram.count,
                        sum=histogram.sum,
                        p50=_json_float(p50),
                        p95=_json_float(p95),
                        p99=_json_float(p99),
                    )
                else:
                    assert isinstance(child, (Counter, Gauge))
                    entry["value"] = _json_float(child.value)
                samples.append(entry)
            result[family.name] = {
                "type": family.type,
                "help": family.help,
                "samples": samples,
            }
        return result


class NullRegistry:
    """Registry stand-in for the disabled fast path: shared no-op children."""

    _counter = NullCounter()
    _gauge = NullGauge()
    _histogram = NullHistogram()

    def counter(
        self, name: str, help_text: str = "", labels: Mapping[str, str] | None = None
    ) -> NullCounter:
        """The shared no-op counter."""
        return self._counter

    def gauge(
        self, name: str, help_text: str = "", labels: Mapping[str, str] | None = None
    ) -> NullGauge:
        """The shared no-op gauge."""
        return self._gauge

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labels: Mapping[str, str] | None = None,
        buckets: Sequence[float] | None = None,
    ) -> NullHistogram:
        """The shared no-op histogram."""
        return self._histogram

    def families(self) -> list[MetricFamily]:
        """Always empty."""
        return []

    def get(self, name: str) -> MetricFamily | None:
        """Always None."""
        return None

    def snapshot(self) -> dict[str, dict]:
        """Always empty."""
        return {}


def _json_float(value: float) -> float | None:
    """NaN / inf become None so snapshots stay strict-JSON serializable."""
    if math.isnan(value) or math.isinf(value):
        return None
    return value


def iter_children(family: MetricFamily) -> Iterable[object]:
    """The family's children in sorted label order (exposition order)."""
    for labels in sorted(family.children):
        yield family.children[labels]
