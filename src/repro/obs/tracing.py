"""Trace spans with a context that survives the asyncio scheduler boundary.

A query through the async serving tier crosses three execution contexts: the
client coroutine that admits it (coalesce → enqueue), the scheduler's drain
task that seals its batch window, and the executor thread that runs the
synopsis work.  A plain ``contextvars``-based tracer loses the trail at each
hop — ``loop.run_in_executor`` does not copy the caller's context, and the
drain task never had it in the first place.  This tracer closes the gap with
two explicit tools:

* every :class:`Span` is a first-class handle that can be carried across the
  boundary (the async engine stows the request's root span on its
  :class:`~repro.serving.coalesce.CoalescedRequest`), and
* :meth:`Tracer.activate` re-installs a carried span as the ambient parent
  inside whatever task or thread continues the work, so the engine- and
  core-level spans created there nest under the original request.

Within one context, :meth:`Tracer.span` is an ordinary context manager that
parents to the ambient span, so synchronous call trees instrument themselves
with no plumbing.  Finished *root* spans are retained in a bounded deque —
the tracer's memory footprint is O(max_traces x spans per trace) no matter
how long the server runs.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from contextvars import ContextVar
from typing import Iterator

__all__ = ["Span", "Tracer", "NullSpan", "NullTracer"]

#: The ambient parent span of the current task / thread.
_CURRENT_SPAN: ContextVar["Span | None"] = ContextVar("repro_obs_span", default=None)

_UNSET = object()

#: Ambient-slot marker meaning "an unsampled trace owns this context":
#: :meth:`Tracer.span` returns a no-op context instead of creating orphan
#: root spans (see :meth:`Tracer.suppress`).
_SUPPRESSED = object()

_ids = itertools.count(1)


class Span:
    """One timed operation in a trace tree.

    Attributes
    ----------
    name:
        The stage name (see the span taxonomy in the README).
    trace_id / span_id:
        The trace the span belongs to and its own id (process-unique).
    attributes:
        Free-form stage telemetry (``nodes_visited``, batch sizes, ...).
    children:
        Child spans, in start order.
    stages:
        Stamped stage durations in seconds (see :meth:`add_stage`).
    start_s / end_s:
        ``time.perf_counter()`` timestamps (``end_s`` is None while open).
    """

    __slots__ = (
        "name",
        "trace_id",
        "span_id",
        "parent_id",
        "attributes",
        "children",
        "stages",
        "start_s",
        "end_s",
    )

    def __init__(
        self,
        name: str,
        trace_id: int,
        span_id: int,
        parent_id: int | None,
        start_s: float,
    ) -> None:
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.attributes: dict[str, object] = {}
        self.children: list["Span"] = []
        self.stages: dict[str, float] = {}
        self.start_s = start_s
        self.end_s: float | None = None

    def set_attribute(self, key: str, value: object) -> None:
        """Attach one key / value of stage telemetry."""
        self.attributes[key] = value

    def add_stage(self, name: str, seconds: float) -> None:
        """Record a stamped stage duration (repeats accumulate).

        Fixed per-request stages on the serving hot path (cache probe,
        scheduler submit, queue wait, coalesce join) are recorded as two
        ``perf_counter`` stamps and one dict write instead of a child
        :class:`Span` — an order of magnitude cheaper per request, which is
        what keeps always-on tracing inside the benchmark's overhead gate.
        Variable-depth work (plan compile, frontier descent, execution) still
        gets real child spans; :meth:`stage_durations_ms` merges both.
        """
        stages = self.stages
        stages[name] = stages.get(name, 0.0) + seconds

    @property
    def duration_s(self) -> float:
        """Wall-clock duration in seconds (NaN while the span is open)."""
        if self.end_s is None:
            return float("nan")
        return self.end_s - self.start_s

    @property
    def duration_ms(self) -> float:
        """Wall-clock duration in milliseconds (NaN while the span is open)."""
        return self.duration_s * 1e3

    def iter_tree(self) -> Iterator["Span"]:
        """Pre-order traversal of the span subtree."""
        yield self
        for child in self.children:
            yield from child.iter_tree()

    def find(self, name: str) -> "Span | None":
        """The first span named ``name`` in the subtree, or None."""
        for span in self.iter_tree():
            if span.name == name:
                return span
        return None

    def stage_durations_ms(self) -> dict[str, float]:
        """Stamped stages plus direct children's durations, keyed by name.

        Repeats are summed; a stamped stage and a child span sharing a name
        accumulate into one entry.
        """
        stages = {name: seconds * 1e3 for name, seconds in self.stages.items()}
        for child in self.children:
            if child.end_s is not None:
                stages[child.name] = stages.get(child.name, 0.0) + child.duration_ms
        return stages

    def render(self, indent: int = 0) -> str:
        """A human-readable one-line-per-span rendering of the subtree."""
        pad = "  " * indent
        attrs = ""
        if self.attributes:
            inner = ", ".join(f"{k}={v}" for k, v in self.attributes.items())
            attrs = f" [{inner}]"
        lines = [f"{pad}{self.name}: {self.duration_ms:.3f} ms{attrs}"]
        for name, seconds in self.stages.items():
            lines.append(f"{pad}  {name}: {seconds * 1e3:.3f} ms (stage)")
        for child in self.children:
            lines.append(child.render(indent + 1))
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "open" if self.end_s is None else f"{self.duration_ms:.3f}ms"
        return f"Span({self.name!r}, trace={self.trace_id}, {state})"


class _SpanContext:
    """Timed context manager: installs a span as ambient, ends it on exit.

    A dedicated class instead of ``@contextmanager`` — span entry/exit is
    the single hottest instrumentation operation (several per request), and
    the generator frame behind ``contextlib`` costs more than the span
    bookkeeping itself.
    """

    __slots__ = ("_tracer", "_span", "_token")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        self._token = _CURRENT_SPAN.set(self._span)
        return self._span

    def __exit__(self, *exc_info: object) -> None:
        _CURRENT_SPAN.reset(self._token)
        self._tracer.end(self._span)


class _ActivationContext:
    """Untimed context manager: re-installs a carried span as ambient."""

    __slots__ = ("_span", "_token")

    def __init__(self, span: Span | None) -> None:
        self._span = span

    def __enter__(self) -> Span | None:
        self._token = _CURRENT_SPAN.set(self._span)
        return self._span

    def __exit__(self, *exc_info: object) -> None:
        _CURRENT_SPAN.reset(self._token)


class Tracer:
    """Creates spans, tracks the ambient parent, retains finished traces.

    Parameters
    ----------
    max_traces:
        Number of finished root spans retained (oldest evicted first).
    sample_every:
        Head-sampling period for :meth:`sample_root`: 1 traces every
        request, N traces one request in N (deterministic round-robin, so
        any steady workload is covered).  Explicit :meth:`start` /
        :meth:`span` calls are never sampled away.
    """

    def __init__(self, max_traces: int = 512, sample_every: int = 1) -> None:
        if max_traces <= 0:
            raise ValueError("max_traces must be positive")
        if sample_every <= 0:
            raise ValueError("sample_every must be positive")
        self._finished: deque[Span] = deque(maxlen=max_traces)
        self._lock = threading.Lock()
        self._sample_every = sample_every
        self._sample_tick = itertools.count()

    @property
    def sample_every(self) -> int:
        """The head-sampling period of :meth:`sample_root`."""
        return self._sample_every

    # ------------------------------------------------------------------
    # Span creation
    # ------------------------------------------------------------------
    def start(
        self,
        name: str,
        parent: Span | None | object = _UNSET,
        start_s: float | None = None,
    ) -> Span:
        """Open a span without activating it (explicit lifecycle).

        ``parent`` defaults to the ambient span of the calling context; pass
        ``None`` to force a new root.  ``start_s`` backdates the span (used
        for queue-wait spans whose start was stamped at enqueue time).
        """
        if parent is _UNSET:
            parent = _CURRENT_SPAN.get()
        assert parent is None or isinstance(parent, Span)
        span_id = next(_ids)
        trace_id = parent.trace_id if parent is not None else span_id
        span = Span(
            name=name,
            trace_id=trace_id,
            span_id=span_id,
            parent_id=parent.span_id if parent is not None else None,
            start_s=time.perf_counter() if start_s is None else start_s,
        )
        if parent is not None:
            parent.children.append(span)
        return span

    def sample_root(self, name: str, start_s: float | None = None) -> Span | None:
        """A new root span for one request in ``sample_every``, else None.

        This is the per-request head-sampling entry point of the serving
        tier: metrics and the query log stay full-fidelity for every request,
        while the per-request span tree — the expensive part — is built for a
        deterministic 1-in-N subset.  The very first request is always
        sampled, so short-lived processes still produce a trace.
        """
        every = self._sample_every
        if every > 1 and next(self._sample_tick) % every:
            return None
        return self.start(name, parent=None, start_s=start_s)

    def end(self, span: "Span | NullSpan", end_s: float | None = None) -> None:
        """Close a span; finished roots enter the bounded trace store.

        Idempotent, and a no-op for :class:`NullSpan` handles — callers that
        hold a ``Span | NullSpan`` union (anything returned by a
        ``Tracer | NullTracer`` start) can end it unconditionally.
        """
        if not isinstance(span, Span) or span.end_s is not None:
            return
        span.end_s = time.perf_counter() if end_s is None else end_s
        if span.parent_id is None:
            with self._lock:
                self._finished.append(span)

    def span(
        self, name: str, parent: Span | None | object = _UNSET, **attributes: object
    ) -> "_SpanContext | _NullSpanContext":
        """Open a span, make it the ambient parent, close it on exit.

        Inside a :meth:`suppress` scope (ambient spans suppressed because
        the owning trace was not head-sampled), returns a shared no-op
        context instead — no span objects are built or retained.
        """
        if parent is _UNSET:
            parent = _CURRENT_SPAN.get()
            if parent is _SUPPRESSED:
                return _NULL_CONTEXT
        span = self.start(name, parent=parent)
        if attributes:
            span.attributes.update(attributes)
        return _SpanContext(self, span)

    def activate(self, span: Span | None) -> _ActivationContext:
        """Re-install a carried span as the ambient parent (no timing).

        This is the cross-boundary half of context propagation: the drain
        task / executor thread wraps its work in ``activate(request.span)``
        so everything instrumented below nests under the request.
        """
        return _ActivationContext(span)

    def suppress(self) -> _ActivationContext:
        """Suppress ambient-parented span creation for a scope.

        The executor-side batch path uses this when the batch's leader was
        not head-sampled: without it, every instrumented layer below the
        scheduler would open *orphan root* spans for unsampled work —
        costing span construction on 15-in-16 batches and flooding the
        bounded trace store with partial trees that evict real request
        traces.  Explicit-parent calls are unaffected.
        """
        return _ActivationContext(_SUPPRESSED)  # type: ignore[arg-type]

    def current(self) -> Span | None:
        """The ambient span of the calling context, or None."""
        span = _CURRENT_SPAN.get()
        return None if span is _SUPPRESSED else span  # type: ignore[comparison-overlap]

    # ------------------------------------------------------------------
    # Finished-trace queries
    # ------------------------------------------------------------------
    def finished(self) -> list[Span]:
        """Finished root spans, oldest first (bounded by ``max_traces``)."""
        with self._lock:
            return list(self._finished)

    def find_trace(self, trace_id: int) -> Span | None:
        """The finished root span with the given trace id, or None."""
        with self._lock:
            for span in self._finished:
                if span.trace_id == trace_id:
                    return span
        return None

    def slowest(self, n: int = 5) -> list[Span]:
        """The ``n`` slowest finished root spans, slowest first."""
        return sorted(self.finished(), key=lambda s: -s.duration_s)[: max(n, 0)]

    def clear(self) -> None:
        """Drop every retained finished trace."""
        with self._lock:
            self._finished.clear()


class NullSpan:
    """Shared do-nothing span for the disabled fast path."""

    __slots__ = ()
    name = "null"
    trace_id = 0
    span_id = 0
    parent_id = None
    attributes: dict[str, object] = {}
    children: list[Span] = []
    stages: dict[str, float] = {}
    start_s = 0.0
    end_s = 0.0
    duration_s = 0.0
    duration_ms = 0.0

    def set_attribute(self, key: str, value: object) -> None:
        """Discard the attribute."""

    def add_stage(self, name: str, seconds: float) -> None:
        """Discard the stage."""

    def iter_tree(self) -> Iterator["NullSpan"]:
        """Just this span."""
        yield self

    def find(self, name: str) -> None:
        """Always None."""
        return None

    def stage_durations_ms(self) -> dict[str, float]:
        """Always empty."""
        return {}

    def render(self, indent: int = 0) -> str:
        """An empty rendering."""
        return ""


class _NullSpanContext:
    """Reusable no-op context manager yielding the shared :class:`NullSpan`."""

    __slots__ = ()
    _span = NullSpan()

    def __enter__(self) -> NullSpan:
        return self._span

    def __exit__(self, *exc_info: object) -> None:
        return None


#: Shared instance returned by :meth:`Tracer.span` inside a suppress scope.
_NULL_CONTEXT = _NullSpanContext()


class NullTracer:
    """Tracer stand-in for the disabled fast path: every call is a no-op."""

    _context = _NullSpanContext()
    _span = NullSpan()
    sample_every = 1

    def start(
        self,
        name: str,
        parent: object = _UNSET,
        start_s: float | None = None,
    ) -> NullSpan:
        """The shared no-op span."""
        return self._span

    def sample_root(self, name: str, start_s: float | None = None) -> Span | None:
        """Never sampled."""
        return None

    def end(self, span: object, end_s: float | None = None) -> None:
        """Discard the close."""

    def span(
        self, name: str, parent: object = _UNSET, **attributes: object
    ) -> _NullSpanContext:
        """A shared no-op context manager."""
        return self._context

    def activate(self, span: object) -> _NullSpanContext:
        """A shared no-op context manager."""
        return self._context

    def suppress(self) -> _NullSpanContext:
        """A shared no-op context manager (nothing to suppress)."""
        return self._context

    def current(self) -> None:
        """Always None."""
        return None

    def finished(self) -> list[Span]:
        """Always empty."""
        return []

    def find_trace(self, trace_id: int) -> None:
        """Always None."""
        return None

    def slowest(self, n: int = 5) -> list[Span]:
        """Always empty."""
        return []

    def clear(self) -> None:
        """Nothing to drop."""
