"""Online accuracy auditing: exact recomputation of sampled served answers.

The serving tier certifies every approximate answer with hard bounds, but
nothing in production *verifies* them — a bug in frontier classification,
a stale extremum after deletes, or a drifted sketch would ship silently
inside confident-looking intervals.  The :class:`AccuracyAuditor` closes
that loop:

* **Head sampling** — every miss answered by a synopsis is *offered*; a
  deterministic 1-in-N tick (the tracer's sampling discipline, PR 6)
  selects audits.  Offers carry a traffic weight, so coalesced stampedes
  advance the sampler by their full ``coalesced_waiters`` count.
* **Off the hot path** — selected audits land in a bounded queue consumed
  by one daemon thread.  Admission control (``put_nowait`` + drop counter)
  and a rate limit guarantee audits never starve serving; the worker takes
  the engine's *read* lock while recomputing, so it shares the reader side
  with queries and merely queues behind writers like any reader.
* **Update-aware ground truth** — a per-table :class:`TruthOracle` mirrors
  streaming inserts / deletes noted by the engine's write path (the
  catalog's fallback ``Table`` is immutable, so the registered table alone
  goes stale).  Every offer captures the oracle's epoch; if the table moved
  before the audit ran, the realized error is still recorded (that *is* the
  staleness-induced error signal) but bound coverage is not judged — the
  served bounds certified a different table state.

Results land on the per-synopsis
:class:`~repro.obs.quality.QualityScorecard`: empirical relative error,
certified-bound coverage (a violation on an exact-guarantee path is a
correctness alarm), bound tightness, and sketch-path rank error
(QUANTILE realized rank distance; COUNT_DISTINCT relative error) vs. the
sketch's self-certified bounds.
"""

from __future__ import annotations

import logging
import math
import queue
import threading
import time
import warnings
from typing import TYPE_CHECKING, Mapping

import numpy as np

from repro.query.aggregates import SKETCH_AGGREGATES, AggregateType, exact_aggregate

if TYPE_CHECKING:  # pragma: no cover - typing-only imports (cycle guard)
    from repro.data.table import Table
    from repro.query.query import AggregateQuery
    from repro.result import AQPResult
    from repro.serving.engine import ServingEngine

__all__ = ["AccuracyAuditor", "TruthOracle"]

logger = logging.getLogger(__name__)

#: Serving-engine name for the exact fallback path (never audited: the
#: answer *is* the exact scan).  Mirrors ``serving.engine.EXACT_FALLBACK``
#: without importing it (the serving package imports this one).
_EXACT_FALLBACK = "__exact__"

_STOP = object()

#: One queued audit: (query, synopsis, table_name, result, epoch, certified).
_AuditItem = tuple["AggregateQuery", str, str, "AQPResult", int, bool]


class TruthOracle:
    """Exact ground truth for one table under streaming updates.

    Keeps the immutable base table plus the insert / delete deltas the
    serving engine applied, and materializes current column arrays on
    demand (mirroring the shard router's replay: base rows plus inserts,
    minus first-match deletes).  ``version`` increments on every noted
    update — the auditor's epoch token for detecting truth that moved
    between serving and auditing.
    """

    def __init__(self, table: "Table") -> None:
        self._table = table
        self._columns = list(table.column_names)
        self._lock = threading.Lock()
        self._inserts: list[dict[str, float]] = []
        self._deletes: list[dict[str, float]] = []
        self._version = 0
        self._dirty = False
        self._arrays: dict[str, np.ndarray] | None = None
        self._lost_sync = False

    @property
    def version(self) -> int:
        """Epoch counter: increments on every noted update."""
        with self._lock:
            return self._version

    @property
    def lost_sync(self) -> bool:
        """True when the oracle can no longer reproduce the table exactly."""
        with self._lock:
            return self._lost_sync

    def note(self, row: Mapping[str, float], kind: str) -> None:
        """Record one applied update (called under the engine's write lock)."""
        with self._lock:
            self._version += 1
            self._dirty = True
            if self._lost_sync:
                return
            try:
                full_row = {col: float(row[col]) for col in self._columns}
            except (KeyError, TypeError, ValueError):
                # A partial row updates the synopsis fine (PASS only needs
                # the partitioning + value columns) but leaves the exact
                # replay ambiguous; stop certifying rather than guess.
                self._lost_sync = True
                self._arrays = None
                return
            if kind == "insert":
                self._inserts.append(full_row)
            else:
                self._deletes.append(full_row)

    def arrays(self) -> dict[str, np.ndarray] | None:
        """Current column arrays (base plus deltas), or None when unsyncable.

        Materialization is cached until the next noted update; only the
        audit worker calls this, so the rebuild cost never lands on the
        serving path.
        """
        with self._lock:
            if self._lost_sync:
                return None
            if not self._dirty and self._arrays is not None:
                return self._arrays
            if not self._inserts and not self._deletes:
                arrays = self._table.columns(self._columns)
            else:
                arrays = self._materialize()
                if arrays is None:
                    self._lost_sync = True
                    self._arrays = None
                    return None
            self._arrays = arrays
            self._dirty = False
            return arrays

    def _materialize(self) -> dict[str, np.ndarray] | None:
        """Replay deltas over the base table (caller holds the lock)."""
        arrays = {
            col: np.concatenate(
                [
                    self._table.column(col),
                    np.array([row[col] for row in self._inserts], dtype=float),
                ]
            )
            if self._inserts
            else np.asarray(self._table.column(col), dtype=float)
            for col in self._columns
        }
        if not self._deletes:
            return arrays
        n = next(iter(arrays.values())).shape[0] if arrays else 0
        keep = np.ones(n, dtype=bool)
        for row in self._deletes:
            match = keep.copy()
            for col in self._columns:
                match &= arrays[col] == row[col]
            indices = np.nonzero(match)[0]
            if indices.shape[0] == 0:
                # The engine deleted a row we cannot find: replay diverged.
                return None
            keep[indices[0]] = False
        return {col: values[keep] for col, values in arrays.items()}


class AccuracyAuditor:
    """Background sampler that recomputes exact answers for served queries.

    Attach to a :class:`~repro.serving.engine.ServingEngine` (the
    constructor does it); the engine then offers every synopsis-served
    miss and notes every applied update.  Use as a context manager or call
    :meth:`stop` to detach and join the worker.

    Parameters
    ----------
    engine:
        The serving engine to audit.
    sample_every:
        Deterministic head-sampling period: one audit per ``sample_every``
        units of offered traffic weight.
    max_queue:
        Admission-control bound on queued audits; offers beyond it are
        dropped (and counted) rather than ever blocking the hot path.
    max_rate:
        Upper bound on audits per second (None = unthrottled).  Audits take
        the engine's read lock, so the rate limit is what guarantees the
        auditor can never monopolize the reader side.
    """

    def __init__(
        self,
        engine: "ServingEngine",
        *,
        sample_every: int = 16,
        max_queue: int = 256,
        max_rate: float | None = 50.0,
    ) -> None:
        if sample_every <= 0:
            raise ValueError(f"sample_every must be positive, got {sample_every}")
        if max_queue <= 0:
            raise ValueError(f"max_queue must be positive, got {max_queue}")
        if max_rate is not None and max_rate <= 0:
            raise ValueError(f"max_rate must be positive, got {max_rate}")
        self._engine = engine
        self._every = sample_every
        self._interval = 0.0 if max_rate is None else 1.0 / max_rate
        self._queue: "queue.Queue[object]" = queue.Queue(maxsize=max_queue)
        self._tick = 0
        self._tick_lock = threading.Lock()
        self._pending = 0
        self._pending_lock = threading.Lock()
        self._oracles: dict[str, TruthOracle] = {}
        self._oracle_lock = threading.Lock()
        self._stop_event = threading.Event()

        registry = engine.obs.metrics
        self._sampled = registry.counter(
            "repro_audit_sampled_total", "Served answers selected for audit."
        )
        self._dropped = registry.counter(
            "repro_audit_dropped_total",
            "Audits dropped by admission control (queue full).",
        )
        self._skipped = registry.counter(
            "repro_audit_skipped_total",
            "Selected audits abandoned (no ground truth available).",
        )
        self._seconds = registry.histogram(
            "repro_audit_seconds", "Wall time of one exact recomputation."
        )
        registry.gauge(
            "repro_audit_queue_depth", "Audits waiting for the worker."
        ).set_function(lambda: float(self._queue.qsize()))

        self._worker = threading.Thread(
            target=self._run, name="accuracy-auditor", daemon=True
        )
        self._worker.start()
        engine.attach_auditor(self)

    # -- hot-path API ------------------------------------------------------

    def offer(
        self,
        query: "AggregateQuery",
        table: str | None,
        synopsis: str,
        result: "AQPResult",
        weight: int = 1,
        certified: bool = True,
    ) -> bool:
        """Offer one served answer; returns True when it was enqueued.

        Called on the serving path for every synopsis miss, so the common
        case is one lock plus integer arithmetic.  ``weight`` advances the
        deterministic sampler by that much traffic (coalesced leaders pass
        their waiter count); a sample fires whenever the tick crosses a
        period boundary.  ``certified=False`` marks offers made outside the
        engine's read-lock scope (the async tier's response-time coalesced
        offers): their error is audited but bound coverage is not judged,
        because an update may have slipped between compute and offer.
        """
        if weight <= 0 or not synopsis or synopsis == _EXACT_FALLBACK:
            return False
        with self._tick_lock:
            before = self._tick
            self._tick = before + weight
            fire = before == 0 or (before - 1) // self._every != (
                self._tick - 1
            ) // self._every
        if not fire:
            return False
        self._sampled.inc()
        try:
            entry = self._engine.catalog.get(synopsis)
        except KeyError:
            self._skipped.inc()
            return False
        oracle = self._oracle(entry.table_name)
        epoch = 0 if oracle is None else oracle.version
        item: _AuditItem = (query, synopsis, entry.table_name, result, epoch, certified)
        try:
            self._queue.put_nowait(item)
        except queue.Full:
            self._dropped.inc()
            return False
        with self._pending_lock:
            self._pending += 1
        return True

    def note_update(self, table_name: str, row: Mapping[str, float], kind: str) -> None:
        """Mirror one applied update into the table's truth oracle.

        Called by the engine under its write lock; cost is one dict probe
        plus a list append.
        """
        oracle = self._oracle(table_name)
        if oracle is not None:
            oracle.note(row, kind)

    # -- lifecycle ---------------------------------------------------------

    def flush(self, timeout: float = 10.0) -> bool:
        """Wait until every enqueued audit completed; True on success."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            with self._pending_lock:
                if self._pending == 0:
                    return True
            time.sleep(0.002)
        with self._pending_lock:
            return self._pending == 0

    def stop(self, timeout: float = 5.0) -> None:
        """Detach from the engine and join the worker thread.

        A join that times out is *reported* (``RuntimeWarning``), not
        swallowed: the worker is a daemon thread, so a silently missed join
        leaves it recomputing exact answers — and holding the engine's read
        lock — while teardown proceeds, which surfaces as flaky shutdown
        hangs far from the cause.
        """
        if self._engine.auditor is self:
            self._engine.detach_auditor()
        if not self._stop_event.is_set():
            self._stop_event.set()
            self._queue.put(_STOP)
        self._worker.join(timeout)
        if self._worker.is_alive():
            warnings.warn(
                f"accuracy-auditor worker did not stop within {timeout}s; "
                "it is a daemon thread and may still hold the engine's read "
                "lock (an in-flight exact recomputation is likely stuck)",
                RuntimeWarning,
                stacklevel=2,
            )

    def __enter__(self) -> "AccuracyAuditor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # -- internals ---------------------------------------------------------

    def _oracle(self, table_name: str) -> TruthOracle | None:
        with self._oracle_lock:
            oracle = self._oracles.get(table_name)
            if oracle is None:
                exact = self._engine.catalog.exact_engine(table_name)
                if exact is None:
                    return None
                oracle = TruthOracle(exact.table)
                self._oracles[table_name] = oracle
            return oracle

    def _run(self) -> None:
        last_start = 0.0
        while True:
            item = self._queue.get()
            if item is _STOP:
                break
            if self._interval > 0.0:
                wait = last_start + self._interval - time.monotonic()
                if wait > 0.0:
                    time.sleep(wait)
            last_start = time.monotonic()
            try:
                self._audit(item)  # type: ignore[arg-type]
            except Exception:  # pragma: no cover - defensive
                logger.exception("accuracy audit failed")
                self._skipped.inc()
            finally:
                with self._pending_lock:
                    self._pending -= 1

    def _audit(self, item: _AuditItem) -> None:
        query, synopsis, table_name, result, epoch, certified = item
        start = time.perf_counter()
        oracle = self._oracle(table_name)
        if oracle is None:
            self._skipped.inc()
            return
        with self._engine.read_locked():
            arrays = oracle.arrays()
            current_epoch = oracle.version
        if arrays is None:
            self._skipped.inc()
            return
        stale = current_epoch != epoch
        value_column = arrays.get(query.value_column)
        if value_column is None:
            self._skipped.inc()
            return
        needed = {col for col, _, _ in query.predicate.canonical_key()}
        if needed:
            try:
                mask = query.predicate.mask({col: arrays[col] for col in needed})
            except KeyError:
                self._skipped.inc()
                return
            values = value_column[mask]
        else:
            values = value_column
        truth = exact_aggregate(query.agg, values, quantile=query.quantile)
        if math.isnan(truth) and not math.isnan(result.estimate):
            # Empty-selection AVG / MIN / MAX: the exact answer is
            # undefined while the served estimate legitimately derives
            # from overlapping partitions.  Nothing to audit.
            self._skipped.inc()
            return
        self._record(query, synopsis, result, truth, values, certified, stale)
        self._seconds.observe(time.perf_counter() - start)

    def _record(
        self,
        query: "AggregateQuery",
        synopsis: str,
        result: "AQPResult",
        truth: float,
        values: np.ndarray,
        certified: bool,
        stale: bool,
    ) -> None:
        sketch = query.agg in SKETCH_AGGREGATES
        tolerance = 1e-9 * max(1.0, abs(truth)) if math.isfinite(truth) else 0.0
        if math.isnan(truth) and math.isnan(result.estimate):
            covered, rel_error, abs_error = True, 0.0, 0.0
        elif math.isnan(result.estimate):
            # The sample missed every matching row but the truth exists:
            # the estimate is unusable (infinite error), yet coverage is
            # still judged against the hard bounds, which derive from
            # partition statistics and may well contain the truth.
            covered = (
                result.hard_lower - tolerance
                <= truth
                <= result.hard_upper + tolerance
            )
            rel_error, abs_error = float("inf"), float("inf")
        else:
            covered = (
                result.hard_lower - tolerance
                <= truth
                <= result.hard_upper + tolerance
            )
            abs_error = abs(result.estimate - truth)
            rel_error = result.relative_error(truth)
        if sketch and query.agg == AggregateType.QUANTILE and values.shape[0] > 0:
            # Realized rank error: distance from the target rank to the
            # estimate's empirical rank interval among the matched values.
            rel_error = _rank_error(values, result.estimate, query.quantile or 0.5)
        width = result.hard_upper - result.hard_lower
        if math.isfinite(width) and math.isfinite(abs_error):
            floor = 1e-12 * max(1.0, abs(truth) if math.isfinite(truth) else 1.0)
            tightness = width / max(abs_error, floor)
        else:
            tightness = float("inf")
        card = self._engine.catalog.scorecard(synopsis)
        card.record_audit(
            rel_error=rel_error,
            covered=covered,
            tightness=tightness,
            certified=certified and not sketch,
            sketch=sketch,
            stale=stale,
        )


def _rank_error(values: np.ndarray, estimate: float, q: float) -> float:
    """Distance from rank ``q`` to the estimate's empirical rank interval."""
    if math.isnan(estimate):
        return float("inf")
    clean = values[~np.isnan(values)] if np.isnan(values).any() else values
    n = clean.shape[0]
    if n == 0:
        return 0.0
    ordered = np.sort(clean)
    rank_low = float(np.searchsorted(ordered, estimate, side="left")) / n
    rank_high = float(np.searchsorted(ordered, estimate, side="right")) / n
    if rank_low <= q <= rank_high:
        return 0.0
    return min(abs(q - rank_low), abs(q - rank_high))
