"""The structured query log: one bounded record per served *execution*.

This is the workload-introspection substrate the self-tuning roadmap item
mines: every cache probe, execution, and rejection that traverses the
serving stack leaves one :class:`QueryLogRecord` carrying *what* was asked
(canonical key, predicate box, aggregate), *who* answered it (synopsis id,
cache / coalesce outcome), *how long* each stage took, and *how good* the
answer was (error-bound width, exactness, staleness at answer time).
Concurrent duplicates that coalesced onto one in-flight execution are
summarized on a single ``coalesced`` record whose ``coalesced_waiters``
carries their count — the traffic weight is preserved without paying one
record per duplicate on the hot path.  A background optimizer can replay
:meth:`QueryLog.boxes` against a candidate partitioning without ever having
seen the live traffic.

The log is a thread-safe ring buffer: appends are O(1), memory is bounded by
``capacity``, and ``total`` keeps counting after old records are evicted so
hit-rate style ratios stay correct over the full process lifetime.  Hot
paths append *raw payload tuples* (:meth:`QueryLog.append_raw`) holding the
query object itself; the canonical key, predicate box, and aggregate label
are derived lazily when the log is read, so the serving thread never pays
for fields only an offline miner looks at.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Mapping

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.query.query import AggregateQuery

__all__ = ["QueryLogRecord", "QueryLog", "NullQueryLog", "agg_label"]

#: Cache / coalesce outcomes a record can carry.
OUTCOMES = ("cache_hit", "miss", "coalesced", "rejected", "error")


def agg_label(query: "AggregateQuery") -> str:
    """The aggregate's display name for telemetry (``QUANTILE(0.95)`` etc.)."""
    if query.quantile is not None:
        return f"{query.agg.value}({query.quantile:g})"
    return query.agg.value


@dataclass(slots=True)
class QueryLogRecord:
    """One served request, fully described.

    Records are written once per request on the serving hot path, so the
    class trades ``frozen=True``'s enforcement for ``slots=True``'s ~6x
    cheaper construction; treat instances as immutable by convention.

    Attributes
    ----------
    timestamp:
        Unix time the record was written.
    table / synopsis:
        Routing table name and the synopsis that answered (``__exact__`` for
        the fallback scan; empty for rejected / coalesced requests).
    agg:
        Aggregate name (``SUM``, ``P95``, ...).
    cache_key:
        The query's canonical key — join against result-cache telemetry.
    predicate_box:
        Canonical ``(column, low, high)`` triples of the predicate — the
        query box a workload-adaptive repartitioner optimizes for.
    outcome:
        One of ``cache_hit`` / ``miss`` / ``coalesced`` / ``rejected`` /
        ``error``.
    total_ms:
        End-to-end latency observed by the recording layer.
    stages_ms:
        Per-stage durations (span taxonomy names); batch-shared stages carry
        the batch's duration.
    error_bound_half_width:
        The answer's CLT half-width (NaN when unavailable or rejected).
    hard_bound_width:
        ``hard_upper - hard_lower`` of the answer (inf when unbounded).
    staleness:
        The serving synopsis' update drift at answer time.
    exact:
        True when the answer was exact.
    trace_id:
        The trace carrying the request's span tree (0 when untraced — the
        request fell outside the tracer's head-sampling period).
    coalesced_waiters:
        Concurrent duplicate requests that shared this record's execution
        (0 for ordinary records) — the traffic weight of the query box
        beyond the record itself.
    """

    timestamp: float
    table: str | None
    synopsis: str
    agg: str
    cache_key: tuple
    predicate_box: tuple[tuple[str, float, float], ...]
    outcome: str
    total_ms: float
    stages_ms: Mapping[str, float] = field(default_factory=dict)
    error_bound_half_width: float = float("nan")
    hard_bound_width: float = float("inf")
    staleness: float = 0.0
    exact: bool = False
    trace_id: int = 0
    coalesced_waiters: int = 0

    def as_dict(self) -> dict[str, object]:
        """A JSON-ready dict view of the record."""
        return {
            "timestamp": self.timestamp,
            "table": self.table,
            "synopsis": self.synopsis,
            "agg": self.agg,
            "cache_key": repr(self.cache_key),
            "predicate_box": [list(interval) for interval in self.predicate_box],
            "outcome": self.outcome,
            "total_ms": self.total_ms,
            "stages_ms": dict(self.stages_ms),
            "error_bound_half_width": self.error_bound_half_width,
            "hard_bound_width": self.hard_bound_width,
            "staleness": self.staleness,
            "exact": self.exact,
            "trace_id": self.trace_id,
            "coalesced_waiters": self.coalesced_waiters,
        }


#: Index of the outcome field in a raw payload tuple (see ``append_raw``).
_RAW_OUTCOME = 4
#: Index of the coalesced-waiters field in a raw payload tuple.
_RAW_WAITERS = 10


def _materialize(entry: "QueryLogRecord | tuple") -> QueryLogRecord:
    """Expand a raw payload tuple into a full record (reads only).

    A payload is ``(timestamp, table, synopsis, query, outcome, total_ms,
    stages_ms, result, staleness, trace_id, coalesced_waiters)``: the query
    object stands in for the three fields derived from it, and the
    (immutable) result object — None for rejections — stands in for the
    bound widths and exactness.
    """
    if type(entry) is QueryLogRecord:
        return entry
    (ts, table, synopsis, query, outcome, total_ms, stages_ms,
     result, staleness, trace_id, waiters) = entry
    if result is not None:
        half_width = result.ci_half_width
        hard_width = result.hard_upper - result.hard_lower
        exact = result.exact
    else:
        half_width = float("nan")
        hard_width = float("inf")
        exact = False
    return QueryLogRecord(
        ts,
        table,
        synopsis,
        agg_label(query),
        query.cache_key(),
        query.predicate.canonical_key(),
        outcome,
        total_ms,
        stages_ms,
        half_width,
        hard_width,
        staleness,
        exact,
        trace_id,
        waiters,
    )


class QueryLog:
    """Bounded, thread-safe ring buffer of :class:`QueryLogRecord`.

    Writers may append full records or raw payload tuples
    (:meth:`append_raw` / :meth:`extend_raw`); payloads are materialized
    into records lazily on the read paths, keeping the serving hot path to
    one tuple pack and one deque append.
    """

    def __init__(self, capacity: int = 2048) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self._records: deque["QueryLogRecord | tuple"] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._total = 0
        self._capacity = capacity

    @property
    def capacity(self) -> int:
        """Maximum retained records."""
        return self._capacity

    @property
    def total(self) -> int:
        """Records ever appended (keeps counting past eviction)."""
        return self._total

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def append(self, record: QueryLogRecord) -> None:
        """Append one record (evicting the oldest at capacity)."""
        if record.outcome not in OUTCOMES:
            raise ValueError(
                f"unknown outcome {record.outcome!r}; expected one of {OUTCOMES}"
            )
        with self._lock:
            self._records.append(record)
            self._total += 1

    def extend(self, records: Iterable[QueryLogRecord]) -> None:
        """Append many records under one lock acquisition.

        The batch execution path logs one record per miss from the executor
        thread while the event loop logs coalesce records concurrently;
        amortizing the lock over the whole batch keeps the two threads from
        serializing on per-record acquisitions.
        """
        records = list(records)
        for record in records:
            if record.outcome not in OUTCOMES:
                raise ValueError(
                    f"unknown outcome {record.outcome!r}; expected one of {OUTCOMES}"
                )
        with self._lock:
            self._records.extend(records)
            self._total += len(records)

    def append_raw(self, payload: tuple) -> None:
        """Append one raw payload tuple (see :func:`_materialize`).

        The serving hot path's write primitive: the payload carries the
        query object, and the canonical key / predicate box / aggregate
        label are derived only when the log is read.
        """
        if payload[_RAW_OUTCOME] not in OUTCOMES:
            raise ValueError(
                f"unknown outcome {payload[_RAW_OUTCOME]!r}; "
                f"expected one of {OUTCOMES}"
            )
        with self._lock:
            self._records.append(payload)
            self._total += 1

    def extend_raw(self, payloads: Iterable[tuple]) -> None:
        """Append many raw payloads under one lock acquisition.

        The batch execution path logs one payload per miss from the executor
        thread while the event loop appends concurrently; amortizing the
        lock over the whole batch keeps the two threads from serializing on
        per-record acquisitions.
        """
        payloads = list(payloads)
        for payload in payloads:
            if payload[_RAW_OUTCOME] not in OUTCOMES:
                raise ValueError(
                    f"unknown outcome {payload[_RAW_OUTCOME]!r}; "
                    f"expected one of {OUTCOMES}"
                )
        with self._lock:
            self._records.extend(payloads)
            self._total += len(payloads)

    def records(self) -> list[QueryLogRecord]:
        """Every retained record, oldest first."""
        with self._lock:
            entries = list(self._records)
        return [_materialize(entry) for entry in entries]

    def tail(self, n: int) -> list[QueryLogRecord]:
        """The most recent ``n`` records, oldest first."""
        with self._lock:
            entries = list(self._records)[-n:] if n > 0 else []
        return [_materialize(entry) for entry in entries]

    def boxes(self) -> list[tuple[tuple[str, float, float], ...]]:
        """The retained query boxes — the repartitioner's training set.

        Boxes are expanded by their traffic weight: a ``coalesced`` summary
        record carrying ``coalesced_waiters == k`` contributes ``k`` extra
        copies of its box, so consumers that train on ``boxes()`` see the
        stampede's true demand instead of one record per sealed execution.
        """
        result: list[tuple[tuple[str, float, float], ...]] = []
        for box, weight in self.weighted_boxes():
            result.extend([box] * weight)
        return result

    def weighted_boxes(
        self,
    ) -> list[tuple[tuple[tuple[str, float, float], ...], int]]:
        """``(box, weight)`` pairs where weight is ``1 + coalesced_waiters``.

        The memory-proportional form of :meth:`boxes` for miners (drift
        detection, repartitioning) that can consume weights directly.
        """
        with self._lock:
            entries = list(self._records)
        pairs: list[tuple[tuple[tuple[str, float, float], ...], int]] = []
        for entry in entries:
            if type(entry) is QueryLogRecord:
                pairs.append((entry.predicate_box, 1 + entry.coalesced_waiters))
            else:
                box = entry[3].predicate.canonical_key()
                pairs.append((box, 1 + entry[_RAW_WAITERS]))
        return pairs

    def weighted_records(self) -> list[tuple[QueryLogRecord, int]]:
        """``(record, weight)`` pairs with weight ``1 + coalesced_waiters``."""
        return [
            (record, 1 + record.coalesced_waiters) for record in self.records()
        ]

    def outcome_counts(self) -> dict[str, int]:
        """Retained records grouped by outcome."""
        counts: dict[str, int] = {}
        with self._lock:
            for entry in self._records:
                outcome = (
                    entry.outcome
                    if type(entry) is QueryLogRecord
                    else entry[_RAW_OUTCOME]
                )
                counts[outcome] = counts.get(outcome, 0) + 1
        return counts

    def clear(self) -> None:
        """Drop every retained record (``total`` keeps its value)."""
        with self._lock:
            self._records.clear()


class NullQueryLog:
    """Query-log stand-in for the disabled fast path."""

    capacity = 0
    total = 0

    def __len__(self) -> int:
        return 0

    def append(self, record: QueryLogRecord) -> None:
        """Discard the record."""

    def extend(self, records: Iterable[QueryLogRecord]) -> None:
        """Discard the records."""

    def append_raw(self, payload: tuple) -> None:
        """Discard the payload."""

    def extend_raw(self, payloads: Iterable[tuple]) -> None:
        """Discard the payloads."""

    def records(self) -> list[QueryLogRecord]:
        """Always empty."""
        return []

    def tail(self, n: int) -> list[QueryLogRecord]:
        """Always empty."""
        return []

    def boxes(self) -> list[tuple[tuple[str, float, float], ...]]:
        """Always empty."""
        return []

    def weighted_boxes(
        self,
    ) -> list[tuple[tuple[tuple[str, float, float], ...], int]]:
        """Always empty."""
        return []

    def weighted_records(self) -> list[tuple[QueryLogRecord, int]]:
        """Always empty."""
        return []

    def outcome_counts(self) -> dict[str, int]:
        """Always empty."""
        return {}

    def clear(self) -> None:
        """Nothing to drop."""


def record_now(**kwargs: object) -> QueryLogRecord:
    """A :class:`QueryLogRecord` stamped with the current wall-clock time."""
    return QueryLogRecord(timestamp=time.time(), **kwargs)  # type: ignore[arg-type]


def iter_boxes(
    records: Iterable[QueryLogRecord],
) -> Iterable[tuple[tuple[str, float, float], ...]]:
    """The predicate boxes of an iterable of records."""
    for record in records:
        yield record.predicate_box
