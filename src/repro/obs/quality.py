"""Per-synopsis answer-quality scorecards and threshold-based health states.

Latency telemetry (PR 6) says how *fast* the serving tier answers; this
module says how *good* the answers are.  Each synopsis gets a
:class:`QualityScorecard` that accumulates, over a bounded audit ring:

* empirical relative error of served estimates vs. recomputed exact answers,
* certified-bound **coverage** — did the true answer fall inside the hard
  bounds?  A miss on an exact-guarantee path is a correctness alarm, not a
  tuning signal, and flips the health state straight to ``violating``;
* bound **tightness** — hard-bound width relative to the realized error, so
  operators can see how much certified headroom the partitioner left;
* workload **drift** score (written by the drift detector) and the staleness
  triple (sample / sketch / extrema) read live from the owning synopsis.

Scorecards live in a :class:`QualityStore`.  When the store is backed by a
real :class:`~repro.obs.metrics.MetricsRegistry`, every scorecard registers
labeled instruments (``repro_quality_*`` plus the ``repro_audit_rel_error``
histogram), so quality flows through the existing Prometheus exposition and
``json_snapshot`` without a second export path.  Health is a pure threshold
function over the snapshot — ``healthy`` / ``degraded`` / ``violating`` —
encoded numerically (0 / 1 / 2) in ``repro_quality_health`` for alerting.
"""

from __future__ import annotations

import math
import threading
from collections import deque
from dataclasses import dataclass
from typing import Callable, Mapping, Union

from repro.obs.metrics import (
    Histogram,
    MetricsRegistry,
    NullHistogram,
    NullRegistry,
)

__all__ = [
    "HEALTH_DEGRADED",
    "HEALTH_HEALTHY",
    "HEALTH_VIOLATING",
    "QUALITY_ERROR_BUCKETS",
    "QualityScorecard",
    "QualityStore",
    "QualityThresholds",
]

HEALTH_HEALTHY = "healthy"
HEALTH_DEGRADED = "degraded"
HEALTH_VIOLATING = "violating"

#: Numeric encoding of health states for the ``repro_quality_health`` gauge.
HEALTH_CODES: Mapping[str, int] = {
    HEALTH_HEALTHY: 0,
    HEALTH_DEGRADED: 1,
    HEALTH_VIOLATING: 2,
}

#: Relative-error buckets for the audit histogram: 0.01% to 100%+.
QUALITY_ERROR_BUCKETS: tuple[float, ...] = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
)

_AnyRegistry = Union[MetricsRegistry, NullRegistry]
_AnyHistogram = Union[Histogram, NullHistogram]


@dataclass(frozen=True)
class QualityThresholds:
    """Degradation thresholds for :meth:`QualityScorecard.health`.

    Any bound-coverage violation on a certified path is ``violating``
    regardless of thresholds; these knobs only separate ``healthy`` from
    ``degraded``.  Defaults are intentionally loose — tune them per
    deployment from the scorecard snapshots themselves.
    """

    max_error_p95: float = 0.25
    max_drift_score: float = 0.35
    max_staleness: float = 0.25
    max_sketch_staleness: float = 0.10
    max_extrema_staleness: float = 0.02


#: Per-audit ring entry: (rel_error, covered-or-None, tightness, sketch).
_AuditEntry = tuple[float, "bool | None", float, bool]


def _percentile(sorted_values: list[float], q: float) -> float:
    """Linear-interpolation percentile of pre-sorted finite values."""
    if not sorted_values:
        return float("nan")
    if len(sorted_values) == 1:
        return sorted_values[0]
    rank = q * (len(sorted_values) - 1)
    low = int(math.floor(rank))
    high = min(low + 1, len(sorted_values) - 1)
    fraction = rank - low
    return sorted_values[low] * (1.0 - fraction) + sorted_values[high] * fraction


class QualityScorecard:
    """Answer-quality accumulator for one synopsis.

    Audits are recorded by the :class:`~repro.obs.audit.AccuracyAuditor`
    worker thread while snapshots are read from scrape / health paths, so
    every mutation and read takes the scorecard's small lock.  Staleness is
    *not* stored here — the owning catalog binds zero-argument providers
    that read the live synopsis at snapshot time, keeping the scorecard a
    pure view with no refresh protocol.
    """

    __slots__ = (
        "name",
        "_lock",
        "_ring",
        "_audits",
        "_violations",
        "_stale_audits",
        "_sketch_audits",
        "_sketch_misses",
        "_drift_score",
        "_staleness_fn",
        "_sketch_staleness_fn",
        "_extrema_staleness_fn",
        "_error_histogram",
    )

    def __init__(self, name: str, ring: int = 256) -> None:
        if ring <= 0:
            raise ValueError(f"ring must be positive, got {ring}")
        self.name = name
        self._lock = threading.Lock()
        self._ring: deque[_AuditEntry] = deque(maxlen=ring)
        self._audits = 0
        self._violations = 0
        self._stale_audits = 0
        self._sketch_audits = 0
        self._sketch_misses = 0
        self._drift_score = 0.0
        self._staleness_fn: Callable[[], float] | None = None
        self._sketch_staleness_fn: Callable[[], float] | None = None
        self._extrema_staleness_fn: Callable[[], float] | None = None
        self._error_histogram: _AnyHistogram = NullHistogram()

    # -- wiring ------------------------------------------------------------

    def bind_providers(
        self,
        *,
        staleness: Callable[[], float] | None = None,
        sketch_staleness: Callable[[], float] | None = None,
        extrema_staleness: Callable[[], float] | None = None,
    ) -> None:
        """Attach live staleness readers (idempotent; None leaves as-is)."""
        if staleness is not None:
            self._staleness_fn = staleness
        if sketch_staleness is not None:
            self._sketch_staleness_fn = sketch_staleness
        if extrema_staleness is not None:
            self._extrema_staleness_fn = extrema_staleness

    def register_instruments(self, registry: _AnyRegistry) -> None:
        """Expose this scorecard through labeled ``repro_quality_*`` metrics.

        All gauges are scrape-time callbacks, so keeping the exposition in
        sync costs the audit path nothing; the two counters mirror lifetime
        tallies and therefore stay monotone as Prometheus requires.
        """
        labels = {"synopsis": self.name}
        registry.counter(
            "repro_quality_audits_total",
            "Completed accuracy audits per synopsis.",
            labels,
        ).set_function(lambda: float(self.audits))
        registry.counter(
            "repro_quality_bound_violations_total",
            "Audits where the exact answer escaped certified hard bounds.",
            labels,
        ).set_function(lambda: float(self.bound_violations))
        registry.gauge(
            "repro_quality_coverage_rate",
            "Certified-bound coverage rate over the audit ring (1.0 = all).",
            labels,
        ).set_function(self.coverage_rate)
        registry.gauge(
            "repro_quality_error_p95",
            "p95 empirical relative error over the audit ring.",
            labels,
        ).set_function(lambda: self.error_percentiles()[2])
        registry.gauge(
            "repro_quality_tightness_ratio",
            "Median certified-bound width over realized absolute error.",
            labels,
        ).set_function(self.tightness_ratio)
        registry.gauge(
            "repro_quality_drift_score",
            "Workload drift score vs. the build-time fingerprint (0..1).",
            labels,
        ).set_function(lambda: self.drift_score)
        registry.gauge(
            "repro_quality_staleness",
            "Unmerged-update fraction of the synopsis sample.",
            labels,
        ).set_function(self.staleness)
        registry.gauge(
            "repro_quality_sketch_staleness",
            "Unmerged-update fraction of the synopsis sketches.",
            labels,
        ).set_function(self.sketch_staleness)
        registry.gauge(
            "repro_quality_extrema_staleness",
            "Fraction of deletes that hit a partition extremum.",
            labels,
        ).set_function(self.extrema_staleness)
        registry.gauge(
            "repro_quality_health",
            "Health state: 0 healthy, 1 degraded, 2 violating.",
            labels,
        ).set_function(lambda: float(HEALTH_CODES[self.health()]))
        self._error_histogram = registry.histogram(
            "repro_audit_rel_error",
            "Empirical relative error of audited answers.",
            labels,
            buckets=QUALITY_ERROR_BUCKETS,
        )

    # -- recording ---------------------------------------------------------

    def record_audit(
        self,
        *,
        rel_error: float,
        covered: bool,
        tightness: float,
        certified: bool,
        sketch: bool = False,
        stale: bool = False,
    ) -> None:
        """Fold one completed audit into the ring and lifetime tallies.

        ``certified`` marks exact-guarantee paths whose hard bounds are a
        correctness contract: only those can raise a bound violation.
        ``stale`` marks audits whose ground truth moved between serving and
        auditing (streaming updates) — their error still lands in the ring
        as the staleness-induced error signal, but coverage is not assessed
        because the served bounds certified a different table state.
        """
        assessed: bool | None = covered if certified and not stale else None
        with self._lock:
            self._audits += 1
            if stale:
                self._stale_audits += 1
            if sketch:
                self._sketch_audits += 1
                if not covered and not stale:
                    self._sketch_misses += 1
            if assessed is False:
                self._violations += 1
            self._ring.append((rel_error, assessed, tightness, sketch))
        if math.isfinite(rel_error):
            self._error_histogram.observe(rel_error)

    def set_drift_score(self, score: float) -> None:
        """Record the latest drift score (written by the drift detector)."""
        with self._lock:
            self._drift_score = float(score)

    # -- snapshots ---------------------------------------------------------

    @property
    def audits(self) -> int:
        """Lifetime completed audits."""
        with self._lock:
            return self._audits

    @property
    def bound_violations(self) -> int:
        """Lifetime certified-bound coverage violations."""
        with self._lock:
            return self._violations

    @property
    def stale_audits(self) -> int:
        """Lifetime audits skipped from coverage because truth had moved."""
        with self._lock:
            return self._stale_audits

    @property
    def sketch_audits(self) -> int:
        """Lifetime audits of sketch-backed (self-certified) answers."""
        with self._lock:
            return self._sketch_audits

    @property
    def sketch_misses(self) -> int:
        """Sketch audits whose truth escaped the self-certified bounds."""
        with self._lock:
            return self._sketch_misses

    @property
    def drift_score(self) -> float:
        """Latest workload drift score (0 until a detector reports)."""
        with self._lock:
            return self._drift_score

    def staleness(self) -> float:
        """Live sample staleness from the bound provider (0 when unbound)."""
        function = self._staleness_fn
        return float(function()) if function is not None else 0.0

    def sketch_staleness(self) -> float:
        """Live sketch staleness from the bound provider (0 when unbound)."""
        function = self._sketch_staleness_fn
        return float(function()) if function is not None else 0.0

    def extrema_staleness(self) -> float:
        """Live extrema staleness from the bound provider (0 when unbound)."""
        function = self._extrema_staleness_fn
        return float(function()) if function is not None else 0.0

    def error_percentiles(self) -> tuple[float, float, float]:
        """(p50, p90, p95) relative error over the finite ring entries."""
        with self._lock:
            errors = sorted(e for e, _, _, _ in self._ring if math.isfinite(e))
        return (
            _percentile(errors, 0.50),
            _percentile(errors, 0.90),
            _percentile(errors, 0.95),
        )

    def coverage_rate(self) -> float:
        """Fraction of coverage-assessed ring audits inside hard bounds.

        1.0 when nothing has been assessed yet — absence of evidence is not
        an alarm.
        """
        with self._lock:
            assessed = [c for _, c, _, _ in self._ring if c is not None]
        if not assessed:
            return 1.0
        return sum(1 for covered in assessed if covered) / len(assessed)

    def tightness_ratio(self) -> float:
        """Median (bound width / realized error) over the ring; NaN if none.

        Large is good: a ratio of 40 means certified bounds are 40x wider
        than the error actually realized.  A ratio drifting toward 1 means
        the bounds are nearly tight — any further quality loss risks a
        violation.
        """
        with self._lock:
            ratios = sorted(t for _, _, t, _ in self._ring if math.isfinite(t))
        return _percentile(ratios, 0.50)

    def health(self, thresholds: QualityThresholds | None = None) -> str:
        """Threshold the snapshot into healthy / degraded / violating."""
        limits = thresholds or QualityThresholds()
        if self.bound_violations > 0:
            return HEALTH_VIOLATING
        p95 = self.error_percentiles()[2]
        degraded = (
            (math.isfinite(p95) and p95 > limits.max_error_p95)
            or self.drift_score > limits.max_drift_score
            or self.staleness() > limits.max_staleness
            or self.sketch_staleness() > limits.max_sketch_staleness
            or self.extrema_staleness() > limits.max_extrema_staleness
        )
        return HEALTH_DEGRADED if degraded else HEALTH_HEALTHY

    def as_dict(self, thresholds: QualityThresholds | None = None) -> dict:
        """A JSON-ready snapshot of every scorecard field."""
        p50, p90, p95 = self.error_percentiles()
        tightness = self.tightness_ratio()
        return {
            "synopsis": self.name,
            "audits": self.audits,
            "bound_violations": self.bound_violations,
            "stale_audits": self.stale_audits,
            "sketch_audits": self.sketch_audits,
            "sketch_misses": self.sketch_misses,
            "coverage_rate": self.coverage_rate(),
            "error_p50": _finite_or_none(p50),
            "error_p90": _finite_or_none(p90),
            "error_p95": _finite_or_none(p95),
            "tightness_ratio": _finite_or_none(tightness),
            "drift_score": self.drift_score,
            "staleness": self.staleness(),
            "sketch_staleness": self.sketch_staleness(),
            "extrema_staleness": self.extrema_staleness(),
            "health": self.health(thresholds),
        }


class QualityStore:
    """Registry of per-synopsis scorecards plus the catalog health rollup.

    An enabled :class:`~repro.obs.Observability` owns a registry-backed
    store (``obs.quality``); a catalog constructed before ``bind_obs`` uses
    a private unregistered store and merges it in at bind time, so no audit
    recorded early is ever lost.
    """

    def __init__(
        self,
        registry: _AnyRegistry | None = None,
        *,
        ring: int = 256,
        thresholds: QualityThresholds | None = None,
    ) -> None:
        self._registry = registry
        self._ring = ring
        self.thresholds = thresholds or QualityThresholds()
        self._lock = threading.Lock()
        self._cards: dict[str, QualityScorecard] = {}

    def scorecard(self, name: str) -> QualityScorecard:
        """The scorecard for ``name``, created (and registered) on first use."""
        with self._lock:
            card = self._cards.get(name)
            if card is None:
                card = QualityScorecard(name, ring=self._ring)
                if self._registry is not None:
                    card.register_instruments(self._registry)
                self._cards[name] = card
            return card

    def get(self, name: str) -> QualityScorecard | None:
        """The scorecard for ``name`` if one exists."""
        with self._lock:
            return self._cards.get(name)

    def names(self) -> list[str]:
        """Registered synopsis names, sorted."""
        with self._lock:
            return sorted(self._cards)

    def merge_from(self, other: "QualityStore") -> None:
        """Adopt another store's scorecards (catalog ``bind_obs`` migration).

        Cards keep their accumulated state; newly adopted cards register
        instruments against this store's registry.  On a name collision the
        existing card wins (it is already exported).
        """
        with other._lock:
            adopted = dict(other._cards)
        with self._lock:
            for name, card in adopted.items():
                if name in self._cards:
                    continue
                if self._registry is not None:
                    card.register_instruments(self._registry)
                self._cards[name] = card

    def snapshot(self) -> dict:
        """JSON-ready scorecards plus the rollup, for ``json_snapshot``."""
        cards = {name: self.scorecard(name).as_dict() for name in self.names()}
        return {"scorecards": cards, "rollup": self.health()}

    def health(self, thresholds: QualityThresholds | None = None) -> dict:
        """Catalog-level health rollup: worst state wins.

        Returns ``{"status", "synopses": {name: state}, "violations"}`` —
        the shape ``engine.health()`` surfaces to operators.
        """
        limits = thresholds or self.thresholds
        states: dict[str, str] = {}
        violations = 0
        for name in self.names():
            card = self.scorecard(name)
            states[name] = card.health(limits)
            violations += card.bound_violations
        order = [HEALTH_HEALTHY, HEALTH_DEGRADED, HEALTH_VIOLATING]
        worst = HEALTH_HEALTHY
        for state in states.values():
            if order.index(state) > order.index(worst):
                worst = state
        return {"status": worst, "synopses": states, "violations": violations}


def _finite_or_none(value: float) -> float | None:
    """NaN / inf become None so scorecard dicts stay strict-JSON."""
    if math.isnan(value) or math.isinf(value):
        return None
    return value
