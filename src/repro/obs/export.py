"""Exporters: Prometheus text exposition, a strict parser, and JSON dumps.

:func:`prometheus_text` renders a :class:`~repro.obs.metrics.MetricsRegistry`
in the Prometheus text exposition format (version 0.0.4): one ``# HELP`` /
``# TYPE`` pair per family, label values escaped, histograms expanded into
cumulative ``_bucket{le=...}`` series plus ``_sum`` / ``_count``.

:func:`validate_exposition` is the strict parser the CI observability smoke
runs against a live scrape: it rejects duplicate family definitions,
duplicate samples, samples without HELP / TYPE, malformed names or label
syntax, non-cumulative histogram buckets, negative counters, and counters
whose names don't end in ``_total`` — the failure modes that silently break
dashboards long before a human looks at them.

:func:`json_snapshot` bundles the registry, the slowest traces, and the
query-log tail into one JSON-ready dict for debugging endpoints and nightly
artifacts.
"""

from __future__ import annotations

import json
import math
from typing import TYPE_CHECKING

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    validate_label_name,
    validate_metric_name,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs import Observability

__all__ = [
    "prometheus_text",
    "validate_exposition",
    "json_snapshot",
    "ExpositionError",
]


class ExpositionError(ValueError):
    """A Prometheus exposition violated the strict format contract."""


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(value: str) -> str:
    return value.replace("\\", "\\\\").replace("\n", "\\n")


def _format_value(value: float) -> str:
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _format_labels(labels: tuple[tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{_escape_label_value(value)}"' for key, value in labels
    )
    return "{" + inner + "}"


def prometheus_text(registry: MetricsRegistry | NullRegistry) -> str:
    """The registry rendered in the Prometheus text exposition format."""
    lines: list[str] = []
    for family in registry.families():
        lines.append(f"# HELP {family.name} {_escape_help(family.help)}")
        lines.append(f"# TYPE {family.name} {family.type}")
        for labels in sorted(family.children):
            child = family.children[labels]
            if isinstance(child, Histogram):
                cumulative = 0
                for bound, count in zip(child.buckets, child.bucket_counts()):
                    cumulative += count
                    bucket_labels = labels + (("le", _format_value(bound)),)
                    lines.append(
                        f"{family.name}_bucket{_format_labels(bucket_labels)} "
                        f"{cumulative}"
                    )
                inf_labels = labels + (("le", "+Inf"),)
                lines.append(
                    f"{family.name}_bucket{_format_labels(inf_labels)} {child.count}"
                )
                lines.append(
                    f"{family.name}_sum{_format_labels(labels)} "
                    f"{_format_value(child.sum)}"
                )
                lines.append(f"{family.name}_count{_format_labels(labels)} {child.count}")
            else:
                assert isinstance(child, (Counter, Gauge))
                lines.append(
                    f"{family.name}{_format_labels(labels)} "
                    f"{_format_value(child.value)}"
                )
    return "\n".join(lines) + ("\n" if lines else "")


def _parse_sample_line(line: str, lineno: int) -> tuple[str, str, float]:
    """Parse ``name{labels} value`` into (name, canonical label string, value)."""
    rest = line
    if "{" in rest:
        name, _, tail = rest.partition("{")
        labels_raw, closed, value_part = tail.partition("}")
        if not closed:
            raise ExpositionError(f"line {lineno}: unterminated label set: {line!r}")
        label_str = _canonical_labels(labels_raw, lineno)
        value_str = value_part.strip()
    else:
        parts = rest.split()
        if len(parts) < 2:
            raise ExpositionError(f"line {lineno}: missing value: {line!r}")
        name, value_str = parts[0], parts[1]
        label_str = ""
    name = name.strip()
    try:
        validate_metric_name(name)
    except ValueError as exc:
        raise ExpositionError(f"line {lineno}: {exc}") from None
    try:
        value = float(value_str)
    except ValueError:
        raise ExpositionError(
            f"line {lineno}: unparseable value {value_str!r}"
        ) from None
    return name, label_str, value


def _canonical_labels(raw: str, lineno: int) -> str:
    """Validate and canonicalize a raw label body (sorted key order)."""
    raw = raw.strip()
    if not raw:
        return ""
    pairs = []
    remainder = raw
    while remainder:
        key, eq, rest = remainder.partition("=")
        if not eq or not rest.startswith('"'):
            raise ExpositionError(f"line {lineno}: malformed labels {raw!r}")
        key = key.strip()
        if key != "le":
            try:
                validate_label_name(key)
            except ValueError as exc:
                raise ExpositionError(f"line {lineno}: {exc}") from None
        # Scan the quoted value honoring backslash escapes.
        index = 1
        value_chars = []
        while index < len(rest):
            char = rest[index]
            if char == "\\":
                if index + 1 >= len(rest):
                    raise ExpositionError(
                        f"line {lineno}: dangling escape in {raw!r}"
                    )
                value_chars.append(rest[index + 1])
                index += 2
                continue
            if char == '"':
                break
            value_chars.append(char)
            index += 1
        else:
            raise ExpositionError(f"line {lineno}: unterminated label value {raw!r}")
        pairs.append((key, "".join(value_chars)))
        remainder = rest[index + 1 :]
        if remainder.startswith(","):
            remainder = remainder[1:]
        elif remainder:
            raise ExpositionError(f"line {lineno}: malformed labels {raw!r}")
    return ",".join(f"{k}={v}" for k, v in sorted(pairs))


def _family_of(sample_name: str, declared: dict[str, str]) -> str | None:
    """The declared family a sample belongs to (histograms have suffixes)."""
    if sample_name in declared:
        return sample_name
    for suffix in ("_bucket", "_sum", "_count"):
        if sample_name.endswith(suffix):
            base = sample_name[: -len(suffix)]
            if declared.get(base) == "histogram":
                return base
    return None


def validate_exposition(text: str) -> dict[str, int]:
    """Strictly validate a Prometheus text exposition.

    Returns ``{family name: sample count}`` on success; raises
    :class:`ExpositionError` on any violation (see the module docstring for
    the list).  Counters must be non-negative and named ``*_total``;
    histogram bucket series must be cumulative and end with ``le="+Inf"``
    equal to the family's ``_count``.
    """
    declared: dict[str, str] = {}
    helped: set[str] = set()
    seen_samples: set[tuple[str, str]] = set()
    sample_counts: dict[str, int] = {}
    buckets: dict[tuple[str, str], list[tuple[float, float]]] = {}
    counts: dict[tuple[str, str], float] = {}

    for lineno, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.rstrip()
        if not line:
            continue
        if line.startswith("# HELP "):
            parts = line.split(None, 3)
            if len(parts) < 3:
                raise ExpositionError(f"line {lineno}: malformed HELP line")
            name = parts[2]
            if name in helped:
                raise ExpositionError(f"line {lineno}: duplicate HELP for {name!r}")
            helped.add(name)
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4:
                raise ExpositionError(f"line {lineno}: malformed TYPE line")
            _, _, name, metric_type = parts
            if metric_type not in ("counter", "gauge", "histogram"):
                raise ExpositionError(
                    f"line {lineno}: unknown metric type {metric_type!r}"
                )
            if name in declared:
                raise ExpositionError(f"line {lineno}: duplicate TYPE for {name!r}")
            if name not in helped:
                raise ExpositionError(f"line {lineno}: TYPE before HELP for {name!r}")
            declared[name] = metric_type
            continue
        if line.startswith("#"):
            continue

        name, label_str, value = _parse_sample_line(line, lineno)
        family = _family_of(name, declared)
        if family is None:
            raise ExpositionError(
                f"line {lineno}: sample {name!r} has no preceding HELP/TYPE"
            )
        sample_key = (name, label_str)
        if sample_key in seen_samples:
            raise ExpositionError(
                f"line {lineno}: duplicate sample {name!r} {{{label_str}}}"
            )
        seen_samples.add(sample_key)
        sample_counts[family] = sample_counts.get(family, 0) + 1

        metric_type = declared[family]
        if metric_type == "counter":
            if not family.endswith("_total"):
                raise ExpositionError(
                    f"line {lineno}: counter {family!r} must be named *_total"
                )
            if math.isnan(value) or value < 0:
                raise ExpositionError(
                    f"line {lineno}: counter {family!r} has invalid value {value}"
                )
        elif metric_type == "histogram":
            if name.endswith("_bucket"):
                le_pairs = [
                    pair for pair in label_str.split(",") if pair.startswith("le=")
                ]
                if len(le_pairs) != 1:
                    raise ExpositionError(
                        f"line {lineno}: histogram bucket without an le label"
                    )
                bound = float(le_pairs[0][3:].replace("+Inf", "inf"))
                series = ",".join(
                    pair
                    for pair in label_str.split(",")
                    if pair and not pair.startswith("le=")
                )
                buckets.setdefault((family, series), []).append((bound, value))
            elif name.endswith("_count"):
                counts[(family, label_str)] = value

    for name in declared:
        if sample_counts.get(name, 0) == 0:
            raise ExpositionError(f"family {name!r} declared but has no samples")
    for (family, series), pairs in buckets.items():
        ordered = sorted(pairs)
        values = [count for _, count in ordered]
        if any(b > a for a, b in zip(values[1:], values)):
            raise ExpositionError(
                f"histogram {family!r} buckets are not cumulative for {series!r}"
            )
        if not ordered or not math.isinf(ordered[-1][0]):
            raise ExpositionError(f"histogram {family!r} is missing the +Inf bucket")
        total = counts.get((family, series))
        if total is not None and ordered[-1][1] != total:
            raise ExpositionError(
                f"histogram {family!r}: +Inf bucket != _count for {series!r}"
            )
    return sample_counts


def json_snapshot(obs: "Observability", slowest: int = 5, tail: int = 50) -> dict:
    """Metrics + traces + query-log tail + quality scorecards, JSON-ready."""
    return {
        "metrics": obs.metrics.snapshot(),
        "quality": obs.quality.snapshot(),
        "slowest_traces": [
            {
                "trace_id": span.trace_id,
                "name": span.name,
                "duration_ms": span.duration_ms,
                "attributes": {k: repr(v) for k, v in span.attributes.items()},
                "stages_ms": span.stage_durations_ms(),
            }
            for span in obs.tracer.slowest(slowest)
        ],
        "query_log": {
            "total": obs.query_log.total,
            "retained": len(obs.query_log),
            "outcomes": obs.query_log.outcome_counts(),
            "tail": [record.as_dict() for record in obs.query_log.tail(tail)],
        },
    }


def json_snapshot_text(obs: "Observability", slowest: int = 5, tail: int = 50) -> str:
    """:func:`json_snapshot` serialized with stable key order."""
    return json.dumps(json_snapshot(obs, slowest=slowest, tail=tail), indent=2)
