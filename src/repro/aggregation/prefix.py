"""Prefix-sum index over a sorted column.

The partitioning optimizers (Section 4.3 and Appendix A) repeatedly need the
sum, sum of squares, and count of the aggregation column over contiguous rank
ranges ``[i, j]`` of the table sorted by the predicate column.  Precomputing
prefix sums makes each such range query O(1), which is what turns the naive
O(k N^4) dynamic program into the practical variants.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["PrefixSums"]


@dataclass(frozen=True)
class PrefixSums:
    """O(1) range sums of a value array and its squares.

    The array is indexed by *rank* (position in the sorted order the caller
    established); ranges are half-open-free: :meth:`range_sum(i, j)` covers the
    closed index range ``[i, j]``.
    """

    values: np.ndarray
    _prefix: np.ndarray
    _prefix_sq: np.ndarray

    @classmethod
    def from_values(cls, values: np.ndarray) -> "PrefixSums":
        """Build prefix sums from a 1-D array of values."""
        values = np.asarray(values, dtype=float)
        if values.ndim != 1:
            raise ValueError("PrefixSums expects a one-dimensional array")
        prefix = np.concatenate([[0.0], np.cumsum(values)])
        prefix_sq = np.concatenate([[0.0], np.cumsum(values**2)])
        return cls(values=values, _prefix=prefix, _prefix_sq=prefix_sq)

    def __len__(self) -> int:
        return int(self.values.shape[0])

    def _check(self, start: int, end: int) -> None:
        if start < 0 or end >= len(self) or start > end:
            raise IndexError(
                f"invalid range [{start}, {end}] for array of length {len(self)}"
            )

    def range_count(self, start: int, end: int) -> int:
        """Number of items in the closed index range ``[start, end]``."""
        self._check(start, end)
        return end - start + 1

    def range_sum(self, start: int, end: int) -> float:
        """Sum of the values in the closed index range ``[start, end]``."""
        self._check(start, end)
        return float(self._prefix[end + 1] - self._prefix[start])

    def range_sum_sq(self, start: int, end: int) -> float:
        """Sum of squared values in the closed index range ``[start, end]``."""
        self._check(start, end)
        return float(self._prefix_sq[end + 1] - self._prefix_sq[start])

    def range_mean(self, start: int, end: int) -> float:
        """Mean of the values in the closed index range ``[start, end]``."""
        return self.range_sum(start, end) / self.range_count(start, end)

    def range_variance(self, start: int, end: int) -> float:
        """Population variance of the values in ``[start, end]`` (clamped at 0)."""
        count = self.range_count(start, end)
        mean = self.range_sum(start, end) / count
        variance = self.range_sum_sq(start, end) / count - mean * mean
        return max(0.0, variance)
