"""Per-partition aggregate statistics.

Every node of a PASS partition tree (and every partition of the stratified
aggregation baseline) carries the four aggregates the paper precomputes:
SUM, COUNT, MIN, MAX of the aggregation column over the partition's tuples
(Section 3.2).  AVG is derived from SUM and COUNT.  The statistics are
*mergeable*: the statistics of a parent node are exactly the merge of its
children's statistics, which is what lets the tree be built bottom-up and
maintained under updates in O(height) time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.query.aggregates import AggregateType

__all__ = ["PartitionStats", "compute_partition_stats"]


@dataclass(frozen=True)
class PartitionStats:
    """SUM / COUNT / MIN / MAX of the aggregation column over one partition.

    The empty partition is represented by ``count == 0`` with ``sum == 0`` and
    ``min = +inf``, ``max = -inf`` so that merging with it is the identity.
    """

    sum: float
    count: int
    min: float
    max: float

    @classmethod
    def empty(cls) -> "PartitionStats":
        """Statistics of an empty partition (the merge identity)."""
        return cls(sum=0.0, count=0, min=math.inf, max=-math.inf)

    @classmethod
    def from_values(cls, values: np.ndarray) -> "PartitionStats":
        """Compute the statistics of a partition from its aggregate values."""
        values = np.asarray(values, dtype=float)
        if values.shape[0] == 0:
            return cls.empty()
        return cls(
            sum=float(values.sum()),
            count=int(values.shape[0]),
            min=float(values.min()),
            max=float(values.max()),
        )

    @property
    def avg(self) -> float:
        """Mean of the partition's values (NaN when empty)."""
        if self.count == 0:
            return float("nan")
        return self.sum / self.count

    @property
    def is_empty(self) -> bool:
        """True when the partition holds no tuples."""
        return self.count == 0

    @property
    def has_zero_variance(self) -> bool:
        """True when every value in the partition is identical.

        This is the trigger for the paper's "0 variance rule" (Section 3.4):
        for AVG queries a zero-variance partition can be treated as covered
        even under partial overlap, because any subset has the same mean.
        """
        return self.count > 0 and self.min == self.max

    def merge(self, other: "PartitionStats") -> "PartitionStats":
        """Statistics of the union of two disjoint partitions."""
        return PartitionStats(
            sum=self.sum + other.sum,
            count=self.count + other.count,
            min=min(self.min, other.min),
            max=max(self.max, other.max),
        )

    def aggregate(self, agg: AggregateType) -> float:
        """The value of one aggregate over the whole partition."""
        agg = AggregateType.parse(agg)
        if agg == AggregateType.SUM:
            return self.sum
        if agg == AggregateType.COUNT:
            return float(self.count)
        if agg == AggregateType.AVG:
            return self.avg
        if agg == AggregateType.MIN:
            return self.min if self.count else float("nan")
        if agg == AggregateType.MAX:
            return self.max if self.count else float("nan")
        raise ValueError(f"unsupported aggregate: {agg!r}")

    def add_value(self, value: float) -> "PartitionStats":
        """Statistics after inserting one tuple with aggregate ``value``."""
        return PartitionStats(
            sum=self.sum + value,
            count=self.count + 1,
            min=min(self.min, value),
            max=max(self.max, value),
        )

    def remove_value(self, value: float) -> "PartitionStats":
        """Statistics after deleting one tuple with aggregate ``value``.

        MIN / MAX cannot be maintained exactly under deletion without the raw
        data; the bounds are kept conservative (they may become loose but stay
        valid), matching the paper's note that heavy updates eventually require
        re-optimisation.
        """
        if self.count == 0:
            raise ValueError("cannot remove a value from an empty partition")
        new_count = self.count - 1
        if new_count == 0:
            return PartitionStats.empty()
        return PartitionStats(
            sum=self.sum - value,
            count=new_count,
            min=self.min,
            max=self.max,
        )


def compute_partition_stats(
    values: np.ndarray, masks: list[np.ndarray]
) -> list[PartitionStats]:
    """Compute :class:`PartitionStats` for several partitions of one column.

    Parameters
    ----------
    values:
        The aggregation column of the full table.
    masks:
        One boolean row mask per partition; partitions are expected to be
        disjoint but this is not enforced here.
    """
    values = np.asarray(values, dtype=float)
    return [PartitionStats.from_values(values[mask]) for mask in masks]
