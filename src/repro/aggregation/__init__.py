"""Stratified aggregation substrate.

Pre-computed partition statistics (SUM / COUNT / MIN / MAX per partition,
Section 2.3), prefix-sum indexes used by the partitioning optimizers, and the
pure stratified-aggregation synopsis with deterministic hard bounds.
"""

from repro.aggregation.partition import PartitionStats, compute_partition_stats
from repro.aggregation.prefix import PrefixSums
from repro.aggregation.strat_agg import HardBounds, StratifiedAggregationSynopsis

__all__ = [
    "PartitionStats",
    "compute_partition_stats",
    "PrefixSums",
    "HardBounds",
    "StratifiedAggregationSynopsis",
]
