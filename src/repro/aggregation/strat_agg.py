"""Stratified aggregation: precomputed partition aggregates with hard bounds.

Section 2.3 of the paper describes the pure-aggregation synopsis: partition
the dataset into ``B`` mutually exclusive partitions and store SUM / COUNT /
MIN / MAX for each.  Any query then splits the partitions into covered,
partial, and disjoint sets, from which deterministic upper and lower bounds
on the true answer follow.  The midpoint of the bounds is used as the point
estimate.

The :func:`hard_bounds` helper implements the bound formulas and is reused by
the PASS synopsis, which reports the same deterministic bounds alongside its
sampled estimate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence


from repro.aggregation.partition import PartitionStats
from repro.data.table import Table
from repro.query.aggregates import AggregateType
from repro.query.predicate import Box, Relation
from repro.query.query import AggregateQuery
from repro.result import AQPResult

__all__ = ["HardBounds", "hard_bounds", "StratifiedAggregationSynopsis"]


@dataclass(frozen=True)
class HardBounds:
    """Deterministic lower / upper bounds on a query answer."""

    lower: float
    upper: float

    @property
    def width(self) -> float:
        """The estimation error ``ub - lb`` of Section 2.3."""
        return self.upper - self.lower

    @property
    def midpoint(self) -> float:
        """Midpoint of the bounds, used as a point estimate."""
        if math.isinf(self.lower) or math.isinf(self.upper):
            return float("nan")
        return 0.5 * (self.lower + self.upper)

    def contains(self, value: float) -> bool:
        """True when ``value`` lies inside the bounds."""
        return self.lower <= value <= self.upper


def hard_bounds(
    agg: AggregateType,
    covered: Sequence[PartitionStats],
    partial: Sequence[PartitionStats],
) -> HardBounds:
    """Deterministic bounds on a query from covered and partial partitions.

    Parameters
    ----------
    agg:
        The aggregate being bounded.
    covered:
        Statistics of the partitions fully covered by the query predicate.
    partial:
        Statistics of the partitions the predicate partially overlaps; the
        number of matching tuples inside them is unknown, which is the sole
        source of the bound width.

    Notes
    -----
    SUM / COUNT assume non-negative aggregate values (the paper's technical
    assumption; shift the data if needed): the lower bound excludes partial
    partitions entirely and the upper bound includes them entirely.
    """
    agg = AggregateType.parse(agg)
    covered = [stats for stats in covered if not stats.is_empty]
    partial = [stats for stats in partial if not stats.is_empty]

    if agg in (AggregateType.SUM, AggregateType.COUNT):
        def key(stats: PartitionStats) -> float:
            return stats.sum if agg == AggregateType.SUM else float(stats.count)

        covered_total = sum(key(stats) for stats in covered)
        partial_total = sum(key(stats) for stats in partial)
        return HardBounds(lower=covered_total, upper=covered_total + partial_total)

    if agg == AggregateType.AVG:
        covered_sum = sum(stats.sum for stats in covered)
        covered_count = sum(stats.count for stats in covered)
        covered_avg = covered_sum / covered_count if covered_count else float("nan")
        partial_max = max((stats.max for stats in partial), default=-math.inf)
        partial_min = min((stats.min for stats in partial), default=math.inf)
        if covered_count and partial:
            return HardBounds(
                lower=min(covered_avg, partial_min), upper=max(covered_avg, partial_max)
            )
        if covered_count:
            return HardBounds(lower=covered_avg, upper=covered_avg)
        if partial:
            return HardBounds(lower=partial_min, upper=partial_max)
        return HardBounds(lower=math.nan, upper=math.nan)

    if agg == AggregateType.MAX:
        covered_max = max((stats.max for stats in covered), default=-math.inf)
        partial_max = max((stats.max for stats in partial), default=-math.inf)
        if not covered and not partial:
            return HardBounds(lower=math.nan, upper=math.nan)
        # The true max is at least the covered max and at most the overall max.
        lower = covered_max if covered else -math.inf
        return HardBounds(lower=lower, upper=max(covered_max, partial_max))

    if agg == AggregateType.MIN:
        covered_min = min((stats.min for stats in covered), default=math.inf)
        partial_min = min((stats.min for stats in partial), default=math.inf)
        if not covered and not partial:
            return HardBounds(lower=math.nan, upper=math.nan)
        upper = covered_min if covered else math.inf
        return HardBounds(lower=min(covered_min, partial_min), upper=upper)

    raise ValueError(f"unsupported aggregate: {agg!r}")


class StratifiedAggregationSynopsis:
    """Flat partitioned-aggregate synopsis (no samples, Section 2.3).

    Stores one :class:`PartitionStats` per partition box.  Queries are
    answered with deterministic bounds only; the point estimate is the bound
    midpoint.  This structure answers aligned queries exactly but is very
    pessimistic under partial overlap — which is exactly the weakness PASS
    fixes by attaching stratified samples to the leaves.
    """

    def __init__(
        self,
        table: Table,
        value_column: str,
        boxes: Sequence[Box],
    ) -> None:
        if not boxes:
            raise ValueError("at least one partition box is required")
        self._value_column = value_column
        self._boxes = list(boxes)
        values = table.column(value_column).astype(float)
        self._stats: list[PartitionStats] = []
        self._sizes: list[int] = []
        for box in self._boxes:
            mask = box.mask(table.columns(box.columns))
            self._stats.append(PartitionStats.from_values(values[mask]))
            self._sizes.append(int(mask.sum()))
        self._population_size = table.n_rows

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def n_partitions(self) -> int:
        """Number of partitions in the synopsis."""
        return len(self._boxes)

    @property
    def boxes(self) -> list[Box]:
        """The partition boxes."""
        return list(self._boxes)

    @property
    def stats(self) -> list[PartitionStats]:
        """The per-partition aggregate statistics."""
        return list(self._stats)

    def storage_bytes(self) -> int:
        """Approximate storage: four floats + a size per partition."""
        return self.n_partitions * 5 * 8

    # ------------------------------------------------------------------
    # Query answering
    # ------------------------------------------------------------------
    def classify(self, query: AggregateQuery) -> tuple[list[int], list[int]]:
        """Indices of (covered, partial) partitions for the query predicate."""
        covered: list[int] = []
        partial: list[int] = []
        for index, box in enumerate(self._boxes):
            relation = query.predicate.relation_to_box(box)
            if relation == Relation.COVER:
                covered.append(index)
            elif relation == Relation.PARTIAL:
                partial.append(index)
        return covered, partial

    def query(self, query: AggregateQuery) -> AQPResult:
        """Answer a query with deterministic bounds (midpoint point estimate)."""
        if query.value_column != self._value_column:
            raise ValueError(
                f"synopsis was built for column {self._value_column!r}, "
                f"query aggregates {query.value_column!r}"
            )
        covered_idx, partial_idx = self.classify(query)
        bounds = hard_bounds(
            query.agg,
            [self._stats[i] for i in covered_idx],
            [self._stats[i] for i in partial_idx],
        )
        exact = not partial_idx
        estimate = bounds.lower if exact else bounds.midpoint
        skipped = sum(self._sizes[i] for i in covered_idx) + (
            self._population_size
            - sum(self._sizes[i] for i in covered_idx + partial_idx)
        )
        return AQPResult(
            estimate=estimate,
            ci_half_width=0.0 if exact else bounds.width / 2.0,
            variance=0.0 if exact else float("nan"),
            hard_lower=bounds.lower,
            hard_upper=bounds.upper,
            tuples_processed=0,
            tuples_skipped=skipped,
            exact=exact,
        )
