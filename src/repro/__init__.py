"""repro — a reproduction of PASS: Precomputation-Assisted Stratified Sampling.

This package implements the SIGMOD 2021 paper "Combining Aggregation and
Sampling (Nearly) Optimally for Approximate Query Processing" end to end:

* the numpy-backed data substrate and surrogate dataset generators
  (:mod:`repro.data`);
* the rectangular query model and exact engine (:mod:`repro.query`);
* the classical sampling synopses — uniform and stratified sampling —
  (:mod:`repro.sampling`) and stratified aggregation with deterministic hard
  bounds (:mod:`repro.aggregation`);
* the partitioning optimizers, including the paper's approximate dynamic
  program and the k-d tree construction (:mod:`repro.partitioning`);
* the PASS synopsis itself: the partition tree, the MCF algorithm, the query
  processor and the builder (:mod:`repro.core`);
* the comparison systems — AQP++, a VerdictDB-style scramble, a DeepDB-style
  factorized model — (:mod:`repro.baselines`);
* the evaluation harness regenerating every table and figure of the paper's
  experiment section (:mod:`repro.evaluation`);
* the serving layer — synopsis catalog with query routing, persistence, and a
  concurrent caching query engine (:mod:`repro.serving`);
* the distributed layer — shard planning, parallel multi-core builds,
  scatter-gather query execution, and a streaming shard router
  (:mod:`repro.distributed`).

Quickstart
----------
>>> from repro import load_dataset, PASSConfig, build_pass, AggregateQuery, RectPredicate
>>> dataset = load_dataset("intel", n_rows=20_000)
>>> synopsis = build_pass(dataset.table, dataset.value_column,
...                       dataset.predicate_columns, PASSConfig(n_partitions=32))
>>> query = AggregateQuery.sum(dataset.value_column,
...                            RectPredicate.from_bounds(time=(0.5, 2.0)))
>>> result = synopsis.query(query)
>>> result.estimate  # doctest: +SKIP
"""

from repro.core.builder import build_pass
from repro.core.config import PASSConfig
from repro.core.pass_synopsis import PASSSynopsis
from repro.core.tree import PartitionTree
from repro.core.updates import DynamicPASS
from repro.data.loaders import load_dataset
from repro.data.table import Table
from repro.distributed.parallel import ParallelBuilder, build_sharded_pass
from repro.distributed.planner import ShardPlan, ShardPlanner
from repro.distributed.router import StreamingShardRouter
from repro.distributed.sharded import ShardedSynopsis
from repro.query.aggregates import AggregateType
from repro.query.predicate import Box, Interval, RectPredicate
from repro.query.query import AggregateQuery, ExactEngine
from repro.result import AQPResult, LAMBDA_95, LAMBDA_99
from repro.sampling.stratified import StratifiedSampleSynopsis
from repro.sampling.uniform import UniformSampleSynopsis
from repro.serving.catalog import SynopsisCatalog
from repro.serving.engine import ServingEngine
from repro.serving.persistence import (
    load_catalog,
    load_synopsis,
    save_catalog,
    save_synopsis,
)
from repro.sketches import DistinctSketch, QuantileSketch

__version__ = "1.0.0"

__all__ = [
    "build_pass",
    "PASSConfig",
    "PASSSynopsis",
    "PartitionTree",
    "DynamicPASS",
    "load_dataset",
    "Table",
    "AggregateType",
    "Box",
    "Interval",
    "RectPredicate",
    "AggregateQuery",
    "ExactEngine",
    "AQPResult",
    "LAMBDA_95",
    "LAMBDA_99",
    "StratifiedSampleSynopsis",
    "UniformSampleSynopsis",
    "SynopsisCatalog",
    "ServingEngine",
    "ShardPlan",
    "ShardPlanner",
    "ParallelBuilder",
    "build_sharded_pass",
    "ShardedSynopsis",
    "StreamingShardRouter",
    "save_synopsis",
    "load_synopsis",
    "save_catalog",
    "load_catalog",
    "QuantileSketch",
    "DistinctSketch",
    "__version__",
]
