"""Equal-depth (equal-frequency) partitioning — the EQ baseline.

Splitting the sorted predicate column into ``k`` partitions of equal tuple
count is the paper's EQ baseline (Section 5.3) and also the provably optimal
partitioning for COUNT query templates (Lemma A.1).  It requires a single
sort and no variance evaluation, so it doubles as the cheap default when no
optimization time is available.
"""

from __future__ import annotations

import numpy as np

from repro.data.table import Table
from repro.partitioning.boundaries import boxes_from_boundaries
from repro.query.predicate import Box

__all__ = ["equal_depth_boundaries", "equal_depth_partition"]


def equal_depth_boundaries(values: np.ndarray, n_partitions: int) -> list[float]:
    """Interior cut values producing ``n_partitions`` equal-count partitions.

    Boundaries are the values of the tuples at ranks ``i * n / k``; duplicate
    values collapse, so fewer than ``n_partitions`` partitions may result on
    heavily repeated data.
    """
    if n_partitions <= 0:
        raise ValueError("n_partitions must be positive")
    values = np.sort(np.asarray(values, dtype=float))
    n = values.shape[0]
    if n == 0:
        raise ValueError("cannot partition an empty column")
    n_partitions = min(n_partitions, n)
    cut_ranks = [int(round(i * n / n_partitions)) - 1 for i in range(1, n_partitions)]
    cuts = [float(values[max(0, rank)]) for rank in cut_ranks]
    return sorted(set(cuts))


def equal_depth_partition(
    table: Table, predicate_column: str, n_partitions: int
) -> list[Box]:
    """Equal-depth partition boxes of a table over one predicate column."""
    boundaries = equal_depth_boundaries(table.column(predicate_column), n_partitions)
    return boxes_from_boundaries(predicate_column, boundaries)
