"""Converting 1-D partition boundaries into rectangular boxes.

All 1-D partitioners in this package (equal-depth, the dynamic programs, the
hill-climbing baseline) produce their result as a sorted list of *cut values*
on the predicate column.  This module turns those cuts into the list of
mutually exclusive :class:`~repro.query.predicate.Box` objects the synopsis
structures consume, and provides the inverse helpers used in tests.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.query.predicate import Box, Interval

__all__ = ["boxes_from_boundaries", "boundaries_from_ranks", "partition_masks"]


def boxes_from_boundaries(column: str, boundaries: Sequence[float]) -> list[Box]:
    """Build 1-D partition boxes from interior cut values.

    ``boundaries`` are the ``k - 1`` interior cut values; the resulting boxes
    are ``(-inf, b_1], (b_1, b_2], ..., (b_{k-1}, +inf)`` with half-open upper
    sides realised via ``nextafter`` so the boxes are disjoint over floats.
    Duplicate or unsorted boundaries are deduplicated and sorted first.
    """
    cuts = sorted(set(float(b) for b in boundaries))
    boxes: list[Box] = []
    low = -math.inf
    for cut in cuts:
        boxes.append(Box({column: Interval(low, cut)}))
        low = float(np.nextafter(cut, math.inf))
    boxes.append(Box({column: Interval(low, math.inf)}))
    return boxes


def boundaries_from_ranks(
    sorted_values: np.ndarray, break_ranks: Sequence[int]
) -> list[float]:
    """Turn partition break ranks over a sorted column into cut values.

    ``break_ranks`` contains, for each partition except the last, the rank of
    its final element in ``sorted_values``; the cut value is that element's
    value (so the partition is the closed prefix up to and including it).
    """
    sorted_values = np.asarray(sorted_values, dtype=float)
    n = sorted_values.shape[0]
    cuts = []
    for rank in break_ranks:
        if rank < 0 or rank >= n:
            raise IndexError(f"break rank {rank} out of range for {n} values")
        cuts.append(float(sorted_values[rank]))
    return cuts


def partition_masks(
    column_values: np.ndarray, boxes: Sequence[Box], column: str
) -> list[np.ndarray]:
    """Boolean row masks of each 1-D partition box over a column."""
    column_values = np.asarray(column_values)
    return [box.mask({column: column_values}) for box in boxes]
