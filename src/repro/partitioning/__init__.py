"""Partitioning optimizers: the core algorithmic contribution of the paper.

This subpackage contains the variance formulas (Section 4.2.1), the
approximate maximum-variance-query oracles (Appendix A), the 1-D dynamic
programs including the ADP algorithm used in the experiments (Section 4.3),
the multi-dimensional k-d tree construction (Section 4.4), and the baseline
partitioners (equal-depth, AQP++ hill climbing).
"""

from repro.partitioning.boundaries import boxes_from_boundaries, partition_masks
from repro.partitioning.dp import (
    PartitioningResult,
    approximate_dp_partition,
    naive_dp_partition,
    optimal_count_partition,
)
from repro.partitioning.equal import equal_depth_boundaries, equal_depth_partition
from repro.partitioning.hill_climbing import hill_climbing_partition
from repro.partitioning.kdtree import KDPartitioningResult, kd_partition
from repro.partitioning.max_variance import (
    MaxVarianceOracle,
    SparseTable,
    brute_force_max_variance,
)
from repro.partitioning.variance import (
    avg_query_variance,
    core_variance_term,
    count_query_variance,
    query_variance,
    sum_query_variance,
)

__all__ = [
    "boxes_from_boundaries",
    "partition_masks",
    "PartitioningResult",
    "approximate_dp_partition",
    "naive_dp_partition",
    "optimal_count_partition",
    "equal_depth_boundaries",
    "equal_depth_partition",
    "hill_climbing_partition",
    "KDPartitioningResult",
    "kd_partition",
    "MaxVarianceOracle",
    "SparseTable",
    "brute_force_max_variance",
    "avg_query_variance",
    "core_variance_term",
    "count_query_variance",
    "query_variance",
    "sum_query_variance",
]
