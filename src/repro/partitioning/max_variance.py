"""Approximating the maximum-variance query inside a partition (Appendix A).

The dynamic programs of Section 4.3 need, for a candidate partition (a
contiguous rank range of the sorted optimization sample), the variance of the
worst query fully contained in it.  Enumerating all O(m^2) sub-intervals is
too slow, so the paper proposes constant-factor approximations:

* **SUM / COUNT** (Appendix A.3): split the partition at its median item into
  two equal halves and return the larger of the two halves' variances — a
  4-approximation of the true maximum.
* **AVG** (Appendix A.4): the worst query contains fewer than ``2*delta*m``
  samples, so it suffices to scan fixed-length windows of ``delta*m`` samples
  and take the one with the largest sum of squared values — again a
  4-approximation.  A sparse table over the pre-computed window scores makes
  each lookup O(1) after O(m log m) preprocessing.

:class:`MaxVarianceOracle` packages these approximations (plus an exact
brute-force fallback used by tests) behind a single ``max_variance(start,
end)`` interface over rank ranges of the sorted sample.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from repro.aggregation.prefix import PrefixSums
from repro.partitioning.variance import (
    avg_query_variance,
    count_query_variance,
    sum_query_variance,
)
from repro.query.aggregates import AggregateType

__all__ = ["SparseTable", "MaxVarianceOracle", "brute_force_max_variance"]


class SparseTable:
    """Static range-maximum queries in O(1) after O(n log n) preprocessing."""

    def __init__(self, values: np.ndarray) -> None:
        values = np.asarray(values, dtype=float)
        if values.ndim != 1:
            raise ValueError("SparseTable expects a one-dimensional array")
        n = values.shape[0]
        self._n = n
        if n == 0:
            self._table = [np.zeros(0)]
            return
        levels = max(1, int(math.floor(math.log2(n))) + 1)
        table = [values.copy()]
        for level in range(1, levels):
            span = 1 << level
            prev = table[level - 1]
            size = n - span + 1
            if size <= 0:
                break
            table.append(np.maximum(prev[:size], prev[span // 2 : span // 2 + size]))
        self._table = table

    def query(self, start: int, end: int) -> float:
        """Maximum of the values in the closed index range ``[start, end]``."""
        if start < 0 or end >= self._n or start > end:
            raise IndexError(f"invalid range [{start}, {end}] for length {self._n}")
        length = end - start + 1
        level = int(math.floor(math.log2(length)))
        span = 1 << level
        left = self._table[level][start]
        right = self._table[level][end - span + 1]
        return float(max(left, right))

    def argmax(self, start: int, end: int) -> int:
        """Index of (one of) the maxima in ``[start, end]``.

        Uses the sparse table to find the maximum value, then a linear scan of
        the (typically short) range to locate it; adequate for the window
        searches this module performs.
        """
        target = self.query(start, end)
        base = self._table[0]
        for index in range(start, end + 1):
            if base[index] == target:
                return index
        raise RuntimeError("sparse table is inconsistent")  # pragma: no cover


class MaxVarianceOracle:
    """Approximate maximum-variance query lookups over a sorted sample.

    Parameters
    ----------
    values:
        Aggregate values of the optimization sample, ordered by the predicate
        column (rank order).
    agg:
        Query type the partitioning is optimized for (SUM, COUNT, or AVG).
    delta:
        The meaningful-query fraction ``delta`` of Section 4.2; AVG windows
        contain ``max(1, round(delta * m))`` samples.
    exact:
        When True, fall back to the exact O(range^2) enumeration; only
        sensible for small inputs (tests, the naive DP).
    """

    def __init__(
        self,
        values: np.ndarray,
        agg: AggregateType | str = AggregateType.SUM,
        delta: float = 0.01,
        exact: bool = False,
    ) -> None:
        self._values = np.asarray(values, dtype=float)
        self._agg = AggregateType.parse(agg)
        if self._agg not in (AggregateType.SUM, AggregateType.COUNT, AggregateType.AVG):
            raise ValueError("partitioning supports SUM, COUNT and AVG query templates")
        if not 0.0 < delta <= 1.0:
            raise ValueError("delta must be in (0, 1]")
        self._delta = delta
        self._exact = exact
        self._prefix = PrefixSums.from_values(self._values)
        m = len(self._prefix)
        self._window = max(1, int(round(delta * m)))
        self._window_scores: SparseTable | None = None
        if self._agg == AggregateType.AVG and not exact and m >= self._window:
            # W[s] = sum of squared values of the window starting at rank s.
            sums_sq = np.concatenate([[0.0], np.cumsum(self._values**2)])
            starts = np.arange(0, m - self._window + 1)
            scores = sums_sq[starts + self._window] - sums_sq[starts]
            self._window_scores = SparseTable(scores)

    @property
    def n_samples(self) -> int:
        """Number of samples the oracle indexes."""
        return len(self._prefix)

    @property
    def window(self) -> int:
        """AVG candidate-window length ``delta * m`` in samples."""
        return self._window

    # ------------------------------------------------------------------
    # Public lookup
    # ------------------------------------------------------------------
    def max_variance(self, start: int, end: int) -> float:
        """Approximate max variance of a query inside rank range ``[start, end]``."""
        if start > end:
            return 0.0
        if self._exact:
            return self._exact_max(start, end)
        if self._agg == AggregateType.COUNT:
            return self._count_max(start, end)
        if self._agg == AggregateType.SUM:
            return self._median_split_max(start, end)
        return self._avg_window_max(start, end)

    def max_variance_query(self, start: int, end: int) -> Tuple[int, int]:
        """The (approximate) worst query's rank range inside ``[start, end]``.

        Used by the experiment harness to generate "challenging" workloads
        around the identified worst region (Section 5.3).
        """
        if start > end:
            return (start, end)
        if self._agg == AggregateType.AVG and self._window_scores is not None:
            length = end - start + 1
            if length >= self._window:
                last_start = end - self._window + 1
                best = self._window_scores.argmax(start, last_start)
                return (best, best + self._window - 1)
            return (start, end)
        mid = (start + end) // 2
        left = self._partition_variance(start, mid, start, end)
        right = (
            self._partition_variance(mid + 1, end, start, end) if mid < end else -1.0
        )
        return (start, mid) if left >= right else (mid + 1, end)

    # ------------------------------------------------------------------
    # Per-aggregate approximations
    # ------------------------------------------------------------------
    def _count_max(self, start: int, end: int) -> float:
        n_partition = end - start + 1
        return count_query_variance(n_partition, n_partition / 2.0)

    def _median_split_max(self, start: int, end: int) -> float:
        if start == end:
            return sum_query_variance(
                1.0,
                self._prefix.range_sum(start, end),
                self._prefix.range_sum_sq(start, end),
            )
        mid = (start + end) // 2
        left = self._partition_variance(start, mid, start, end)
        right = self._partition_variance(mid + 1, end, start, end)
        return max(left, right)

    def _avg_window_max(self, start: int, end: int) -> float:
        n_partition = end - start + 1
        window = self._window
        if n_partition < 2 * window or self._window_scores is None:
            # Appendix A.4: partitions with fewer than 2*delta*m samples are
            # treated as having zero meaningful-query variance.
            return 0.0
        # The worst AVG window maximizes its sum of squares (Appendix A.4);
        # a range-max over the precomputed window scores finds it in O(1).
        # Lemma A.2 bounds the core term by (n_i - |q|) * sum(t^2) from below
        # and n_i * sum(t^2) from above, so scoring with the lower bound keeps
        # the constant-factor guarantee while avoiding a per-call argmax scan.
        last_start = end - window + 1
        best_score = self._window_scores.query(start, last_start)
        core_lower = (n_partition - window) * best_score
        return core_lower / (n_partition * window * window)

    def _partition_variance(
        self, q_start: int, q_end: int, p_start: int, p_end: int
    ) -> float:
        """Variance of the query ``[q_start, q_end]`` inside partition ``[p_start, p_end]``."""
        n_partition = p_end - p_start + 1
        q_sum = self._prefix.range_sum(q_start, q_end)
        q_sum_sq = self._prefix.range_sum_sq(q_start, q_end)
        n_query = q_end - q_start + 1
        if self._agg == AggregateType.SUM:
            return sum_query_variance(n_partition, q_sum, q_sum_sq)
        if self._agg == AggregateType.COUNT:
            return count_query_variance(n_partition, n_query)
        return avg_query_variance(n_partition, n_query, q_sum, q_sum_sq)

    # ------------------------------------------------------------------
    # Exact enumeration (tests / naive DP)
    # ------------------------------------------------------------------
    def _exact_max(self, start: int, end: int) -> float:
        best = 0.0
        min_len = self._window if self._agg == AggregateType.AVG else 1
        for q_start in range(start, end + 1):
            for q_end in range(q_start + min_len - 1, end + 1):
                best = max(best, self._partition_variance(q_start, q_end, start, end))
        return best


def brute_force_max_variance(
    values: np.ndarray,
    agg: AggregateType | str,
    delta: float = 0.01,
) -> float:
    """Exact maximum query variance over a whole (small) partition.

    A convenience wrapper around the oracle's exact mode, used by tests to
    verify the approximation factors of the fast lookups.
    """
    oracle = MaxVarianceOracle(values, agg=agg, delta=delta, exact=True)
    return oracle.max_variance(0, oracle.n_samples - 1)
