"""Single-partition query variance formulas (Section 4.2.1 and Appendix A).

The partitioning optimizers score a candidate partition by the largest
variance any "meaningful" query fully contained in it could have.  This
module implements the per-query variance ``V_i(q)`` for SUM, COUNT, and AVG
queries in two flavours:

* **population** formulas over the actual tuples of the partition
  (Section 4.2.1), used by the exact dynamic program and by tests; and
* **sampled** formulas over the optimization sample (Appendix A.2), where
  only the core term ``n_i * sum(t^2) - (sum(t))^2`` matters for comparing
  queries inside the same partition.

All functions accept pre-aggregated moments (count, sum, sum of squares) so
callers can evaluate them from prefix sums in O(1).
"""

from __future__ import annotations

from repro.query.aggregates import AggregateType

__all__ = [
    "core_variance_term",
    "sum_query_variance",
    "count_query_variance",
    "avg_query_variance",
    "query_variance",
    "sampled_sum_error_variance",
    "sampled_avg_error_variance",
]


def core_variance_term(n_partition: float, q_sum: float, q_sum_sq: float) -> float:
    """The shared term ``V_i(q) = n_i * sum(t^2) - (sum(t))^2`` (Appendix A.2).

    ``n_partition`` is the number of items in the partition (not the query).
    The term is non-negative whenever the query is contained in the partition;
    it is clamped at zero to absorb floating-point cancellation.
    """
    return max(0.0, n_partition * q_sum_sq - q_sum * q_sum)


def sum_query_variance(n_partition: float, q_sum: float, q_sum_sq: float) -> float:
    """``V_i(q)`` of a SUM query fully inside a partition (Section 4.2.1).

    ``V_i(q) = (1 / N_i) * (N_i * sum(t^2) - (sum(t))^2)``.
    """
    if n_partition <= 0:
        return 0.0
    return core_variance_term(n_partition, q_sum, q_sum_sq) / n_partition


def count_query_variance(n_partition: float, n_query: float) -> float:
    """``V_i(q)`` of a COUNT query: SUM variance with all values equal to 1.

    With ``X = n_query`` matching tuples, the core term is ``N_i*X - X^2`` and
    the variance is ``(N_i*X - X^2) / N_i``; it is maximised at ``X = N_i/2``
    (Lemma A.1), which is why equal-size partitions are optimal for COUNT.
    """
    if n_partition <= 0:
        return 0.0
    return max(0.0, n_partition * n_query - n_query * n_query) / n_partition


def avg_query_variance(
    n_partition: float, n_query: float, q_sum: float, q_sum_sq: float
) -> float:
    """``V_i(q)`` of an AVG query fully inside a partition (Section 4.2.1).

    ``V_i(q) = (1 / N_i) * (1 / N_iq^2) * (N_i * sum(t^2) - (sum(t))^2)``.
    """
    if n_partition <= 0 or n_query <= 0:
        return 0.0
    return core_variance_term(n_partition, q_sum, q_sum_sq) / (
        n_partition * n_query * n_query
    )


def query_variance(
    agg: AggregateType,
    n_partition: float,
    n_query: float,
    q_sum: float,
    q_sum_sq: float,
) -> float:
    """Dispatch to the per-aggregate ``V_i(q)`` formula."""
    agg = AggregateType.parse(agg)
    if agg == AggregateType.SUM:
        return sum_query_variance(n_partition, q_sum, q_sum_sq)
    if agg == AggregateType.COUNT:
        return count_query_variance(n_partition, n_query)
    if agg == AggregateType.AVG:
        return avg_query_variance(n_partition, n_query, q_sum, q_sum_sq)
    raise ValueError(f"partitioning variance is not defined for {agg!r}")


def sampled_sum_error_variance(
    population_size: float, n_samples: float, q_sum: float, q_sum_sq: float
) -> float:
    """Sample-based error variance of a SUM (or COUNT) query (Appendix A.1).

    ``(N_i^2 / n_i^3) * (n_i * sum(t^2) - (sum(t))^2)`` where the sums range
    over the sampled items of the query inside the partition.
    """
    if n_samples <= 0:
        return 0.0
    core = core_variance_term(n_samples, q_sum, q_sum_sq)
    return (population_size * population_size) / (n_samples**3) * core


def sampled_avg_error_variance(
    n_samples: float, q_samples: float, q_sum: float, q_sum_sq: float
) -> float:
    """Sample-based error variance of an AVG query (Appendix A.2).

    ``(1 / (n_i * |q|^2)) * (n_i * sum(t^2) - (sum(t))^2)`` where ``|q|`` is
    the number of sampled items inside the query.
    """
    if n_samples <= 0 or q_samples <= 0:
        return 0.0
    core = core_variance_term(n_samples, q_sum, q_sum_sq)
    return core / (n_samples * q_samples * q_samples)
