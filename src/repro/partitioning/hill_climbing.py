"""Hill-climbing partition selection — the AQP++ optimizer.

AQP++ [Peng et al. 2018] chooses which aggregate precomputations to
materialize with a practical iterative hill-climbing heuristic rather than a
dynamic program.  Our implementation reproduces that behaviour for the 1-D
experiments: starting from equal-depth boundaries over an optimization
sample, single boundaries are nudged to neighbouring sample ranks and a move
is kept whenever it lowers the maximum single-partition query variance.

The paper's experiments note that this heuristic "performs very similar to
the equal partitioning algorithm", which this implementation also exhibits —
it converges to a local optimum close to its equal-depth start.
"""

from __future__ import annotations

import numpy as np

from repro.data.table import Table
from repro.partitioning.dp import PartitioningResult, _ranks_to_boundaries
from repro.partitioning.boundaries import boxes_from_boundaries
from repro.partitioning.max_variance import MaxVarianceOracle
from repro.query.aggregates import AggregateType

__all__ = ["hill_climbing_partition"]


def _objective(oracle: MaxVarianceOracle, breaks: list[int]) -> float:
    """Max single-partition query variance of a break-rank configuration."""
    m = oracle.n_samples
    edges = [-1] + sorted(breaks) + [m - 1]
    worst = 0.0
    for start_edge, end_edge in zip(edges[:-1], edges[1:]):
        start = start_edge + 1
        if start > end_edge:
            continue
        worst = max(worst, oracle.max_variance(start, end_edge))
    return worst


def hill_climbing_partition(
    table: Table,
    value_column: str,
    predicate_column: str,
    n_partitions: int,
    agg: AggregateType | str = AggregateType.SUM,
    delta: float = 0.05,
    opt_sample_size: int | None = None,
    max_iterations: int = 500,
    patience: int = 100,
    rng: np.random.Generator | int | None = 0,
) -> PartitioningResult:
    """Optimize a 1-D partitioning with the AQP++ hill-climbing heuristic.

    Parameters
    ----------
    table, value_column, predicate_column, n_partitions, agg, delta:
        Same meaning as for :func:`~repro.partitioning.dp.approximate_dp_partition`.
    opt_sample_size:
        Optimization sample size (default ``min(1000, N)``).
    max_iterations:
        Total number of candidate moves evaluated.
    patience:
        Stop after this many consecutive non-improving moves.
    rng:
        Numpy generator or seed (controls both the sample and the moves).
    """
    agg = AggregateType.parse(agg)
    if n_partitions <= 0:
        raise ValueError("n_partitions must be positive")
    generator = (
        rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    )
    if opt_sample_size is None:
        opt_sample_size = min(1000, table.n_rows)
    opt_sample_size = min(opt_sample_size, table.n_rows)

    indices = generator.choice(table.n_rows, size=opt_sample_size, replace=False)
    predicate_values = table.column(predicate_column)[indices].astype(float)
    aggregate_values = table.column(value_column)[indices].astype(float)
    order = np.argsort(predicate_values, kind="stable")
    predicate_sorted = predicate_values[order]
    values_sorted = aggregate_values[order]
    m = values_sorted.shape[0]

    oracle = MaxVarianceOracle(values_sorted, agg=agg, delta=delta, exact=False)
    k = max(1, min(n_partitions, m))
    breaks = sorted({int(round(i * m / k)) - 1 for i in range(1, k)} - {-1, m - 1})
    best_objective = _objective(oracle, breaks)

    stale = 0
    for _ in range(max_iterations):
        if not breaks or stale >= patience:
            break
        position = int(generator.integers(0, len(breaks)))
        step = int(generator.integers(1, max(2, m // (4 * k))))
        direction = 1 if generator.random() < 0.5 else -1
        candidate = list(breaks)
        moved = candidate[position] + direction * step
        lower = candidate[position - 1] + 1 if position > 0 else 0
        upper = candidate[position + 1] - 1 if position + 1 < len(candidate) else m - 2
        moved = max(lower, min(upper, moved))
        if moved == candidate[position]:
            stale += 1
            continue
        candidate[position] = moved
        objective = _objective(oracle, candidate)
        if objective < best_objective:
            breaks = candidate
            best_objective = objective
            stale = 0
        else:
            stale += 1

    boundaries = _ranks_to_boundaries(predicate_sorted, sorted(breaks))
    return PartitioningResult(
        column=predicate_column,
        boundaries=tuple(boundaries),
        boxes=tuple(boxes_from_boundaries(predicate_column, boundaries)),
        objective=best_objective,
        break_ranks=tuple(sorted(breaks)),
    )
