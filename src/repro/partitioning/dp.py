"""1-D partitioning via dynamic programming (Section 4.3, Appendix A.5).

Given a query template (SUM, COUNT, or AVG) the goal is a partitioning of the
sorted predicate column into ``k`` contiguous buckets that minimizes the
maximum single-partition query variance.  Three algorithm variants are
provided, mirroring the paper's progression:

* :func:`naive_dp_partition` — the exact dynamic program over every tuple with
  exhaustive query enumeration inside each candidate bucket.  Exponentially
  clearer than it is fast; used on tiny inputs and in tests.
* :func:`approximate_dp_partition` — the **ADP** algorithm used in the paper's
  experiments: optimize over a uniform sample of ``m`` tuples, approximate the
  worst in-bucket query with the constant-factor oracles of Appendix A, and
  exploit the monotonicity of the DP to binary-search each split point.
  Runs in ``O(k * m * log m)`` oracle calls.
* :func:`optimal_count_partition` — the closed-form optimum for COUNT
  templates (equal-count buckets, Lemma A.1).

All variants return a :class:`PartitioningResult` whose boxes plug directly
into the PASS builder or the stratified-sampling baseline.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.table import Table
from repro.partitioning.boundaries import boxes_from_boundaries
from repro.partitioning.equal import equal_depth_boundaries
from repro.partitioning.max_variance import MaxVarianceOracle
from repro.partitioning.variance import count_query_variance
from repro.query.aggregates import AggregateType
from repro.query.predicate import Box

__all__ = [
    "PartitioningResult",
    "naive_dp_partition",
    "approximate_dp_partition",
    "optimal_count_partition",
]


@dataclass(frozen=True)
class PartitioningResult:
    """Outcome of a 1-D partitioning optimization.

    Attributes
    ----------
    column:
        The predicate column the partitioning applies to.
    boundaries:
        Interior cut values (``k - 1`` of them, possibly fewer after
        deduplication).
    boxes:
        The partition boxes derived from the boundaries.
    objective:
        The optimizer's (approximate) value of the max single-partition query
        variance for the returned partitioning.
    break_ranks:
        For sample-based optimizers, the end rank of each partition except the
        last within the sorted optimization sample; empty otherwise.
    """

    column: str
    boundaries: tuple[float, ...]
    boxes: tuple[Box, ...]
    objective: float
    break_ranks: tuple[int, ...] = ()

    @property
    def n_partitions(self) -> int:
        """Number of partitions produced."""
        return len(self.boxes)


def _run_dp(
    oracle: MaxVarianceOracle,
    n_partitions: int,
    use_binary_search: bool,
) -> tuple[list[int], float]:
    """Core min-max dynamic program over the oracle's rank space.

    Returns the break ranks (end rank of every partition except the last) and
    the optimal objective value.
    """
    m = oracle.n_samples
    if m == 0:
        raise ValueError("cannot partition an empty sample")
    k = max(1, min(n_partitions, m))

    # best[i][j]: minimal max-variance splitting the first i samples (ranks
    # 0..i-1) into at most j+1 partitions.  parent[i][j]: the chosen h (number
    # of samples in the first j partitions).
    best = np.full((m + 1, k), np.inf)
    parent = np.full((m + 1, k), -1, dtype=int)
    best[0, :] = 0.0
    for i in range(1, m + 1):
        best[i, 0] = oracle.max_variance(0, i - 1)
        parent[i, 0] = 0

    for j in range(1, k):
        for i in range(1, m + 1):
            if use_binary_search:
                h = _binary_search_split(oracle, best, i, j)
                candidates = [c for c in (h - 1, h, h + 1) if 0 <= c <= i - 1]
            else:
                candidates = list(range(0, i))
            best_value = np.inf
            best_h = 0
            for candidate in candidates:
                value = max(
                    best[candidate, j - 1], oracle.max_variance(candidate, i - 1)
                )
                if value < best_value:
                    best_value = value
                    best_h = candidate
            best[i, j] = best_value
            parent[i, j] = best_h

    # Reconstruct the break ranks from the parent pointers.
    breaks: list[int] = []
    i = m
    for j in range(k - 1, 0, -1):
        h = int(parent[i, j])
        if 0 < h < m:
            breaks.append(h - 1)
        i = h
        if i <= 0:
            break
    breaks.sort()
    return breaks, float(best[m, k - 1])


def _binary_search_split(
    oracle: MaxVarianceOracle, best: np.ndarray, i: int, j: int
) -> int:
    """Binary-search the crossing point of the two monotone DP terms.

    ``best[h, j-1]`` is non-decreasing in ``h`` while the max variance of the
    final bucket ``[h, i-1]`` is non-increasing, so the optimal split is where
    they cross (Appendix A.5).
    """
    lo, hi = 0, i - 1
    while lo < hi:
        mid = (lo + hi) // 2
        if best[mid, j - 1] < oracle.max_variance(mid, i - 1):
            lo = mid + 1
        else:
            hi = mid
    return lo


def _ranks_to_boundaries(
    sorted_predicate: np.ndarray, break_ranks: list[int]
) -> list[float]:
    """Cut values halfway between the last sample of a bucket and the next one."""
    cuts = []
    n = sorted_predicate.shape[0]
    for rank in break_ranks:
        left = float(sorted_predicate[rank])
        right = float(sorted_predicate[min(rank + 1, n - 1)])
        cuts.append(left if left == right else 0.5 * (left + right))
    return sorted(set(cuts))


def naive_dp_partition(
    table: Table,
    value_column: str,
    predicate_column: str,
    n_partitions: int,
    agg: AggregateType | str = AggregateType.SUM,
    delta: float = 0.05,
) -> PartitioningResult:
    """Exact 1-D dynamic program over every tuple (small inputs only).

    Enumerates every candidate query inside every candidate bucket, so the
    cost grows as ``O(k * N^2 * |Q|)``; intended for datasets of at most a few
    hundred rows (ground truth for tests and for validating ADP).
    """
    agg = AggregateType.parse(agg)
    order = np.argsort(table.column(predicate_column), kind="stable")
    predicate_sorted = table.column(predicate_column)[order].astype(float)
    values_sorted = table.column(value_column)[order].astype(float)
    oracle = MaxVarianceOracle(values_sorted, agg=agg, delta=delta, exact=True)
    breaks, objective = _run_dp(oracle, n_partitions, use_binary_search=False)
    boundaries = _ranks_to_boundaries(predicate_sorted, breaks)
    return PartitioningResult(
        column=predicate_column,
        boundaries=tuple(boundaries),
        boxes=tuple(boxes_from_boundaries(predicate_column, boundaries)),
        objective=objective,
        break_ranks=tuple(breaks),
    )


def approximate_dp_partition(
    table: Table,
    value_column: str,
    predicate_column: str,
    n_partitions: int,
    agg: AggregateType | str = AggregateType.SUM,
    delta: float = 0.05,
    opt_sample_size: int | None = None,
    opt_sample_rate: float | None = None,
    rng: np.random.Generator | int | None = 0,
) -> PartitioningResult:
    """The ADP partitioner: sampled, discretized, binary-searched DP.

    Parameters
    ----------
    table, value_column, predicate_column:
        Dataset and column roles.
    n_partitions:
        Desired number of leaf partitions ``k``.
    agg:
        The query template to optimize for (COUNT templates short-circuit to
        the equal-count optimum).
    delta:
        Meaningful-query fraction; AVG candidate windows span ``delta * m``
        samples.
    opt_sample_size / opt_sample_rate:
        Size of the uniform optimization sample ``m`` (default:
        ``min(2000, N)``).  At most one of the two may be given.
    rng:
        Numpy generator or seed for the optimization sample.
    """
    agg = AggregateType.parse(agg)
    if agg == AggregateType.COUNT:
        return optimal_count_partition(table, predicate_column, n_partitions)
    if opt_sample_size is not None and opt_sample_rate is not None:
        raise ValueError("provide at most one of opt_sample_size or opt_sample_rate")
    if opt_sample_rate is not None:
        if not 0.0 < opt_sample_rate <= 1.0:
            raise ValueError("opt_sample_rate must be in (0, 1]")
        opt_sample_size = max(1, int(round(opt_sample_rate * table.n_rows)))
    if opt_sample_size is None:
        opt_sample_size = min(1000, table.n_rows)
    opt_sample_size = min(opt_sample_size, table.n_rows)
    if opt_sample_size < n_partitions:
        opt_sample_size = min(table.n_rows, max(n_partitions * 4, opt_sample_size))

    generator = (
        rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    )
    indices = generator.choice(table.n_rows, size=opt_sample_size, replace=False)
    predicate_values = table.column(predicate_column)[indices].astype(float)
    aggregate_values = table.column(value_column)[indices].astype(float)
    order = np.argsort(predicate_values, kind="stable")
    predicate_sorted = predicate_values[order]
    values_sorted = aggregate_values[order]

    oracle = MaxVarianceOracle(values_sorted, agg=agg, delta=delta, exact=False)
    breaks, objective = _run_dp(oracle, n_partitions, use_binary_search=True)
    boundaries = _ranks_to_boundaries(predicate_sorted, breaks)
    return PartitioningResult(
        column=predicate_column,
        boundaries=tuple(boundaries),
        boxes=tuple(boxes_from_boundaries(predicate_column, boundaries)),
        objective=objective,
        break_ranks=tuple(breaks),
    )


def optimal_count_partition(
    table: Table, predicate_column: str, n_partitions: int
) -> PartitioningResult:
    """Optimal 1-D partitioning for COUNT templates: equal-count buckets.

    Lemma A.1 shows the worst COUNT query in a bucket of ``N_i`` tuples has
    variance proportional to ``N_i``, so equalizing bucket sizes minimizes the
    maximum; this runs in a single sort.
    """
    boundaries = equal_depth_boundaries(table.column(predicate_column), n_partitions)
    boxes = boxes_from_boundaries(predicate_column, boundaries)
    largest = int(np.ceil(table.n_rows / max(1, len(boxes))))
    objective = count_query_variance(largest, largest / 2.0)
    return PartitioningResult(
        column=predicate_column,
        boundaries=tuple(boundaries),
        boxes=tuple(boxes),
        objective=objective,
    )
