"""Multi-dimensional partitioning with k-d trees (Section 4.4).

For more than one predicate column the paper parameterizes the search space
by balanced k-d trees: every node splits its box at the median of each of the
``d`` predicate attributes simultaneously (fan-out ``2^d``).  Starting from
the root, leaves are expanded greedily until ``k`` leaves exist.  Two
expansion policies correspond to the experiment's two systems:

* ``"max_variance"`` — expand the leaf containing the (approximately) largest
  single-leaf query variance; this is **KD-PASS**.
* ``"breadth_first"`` — always expand a leaf of minimal depth, ties broken at
  random; this is the **KD-US** baseline of Section 5.4.

The optimization operates over a uniform sample of the data (like ADP); the
returned boxes partition the full predicate space and are consumed directly
by the PASS builder and the baselines.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.data.table import Table
from repro.partitioning.variance import avg_query_variance, sum_query_variance
from repro.query.aggregates import AggregateType
from repro.query.predicate import Box, Interval

__all__ = ["KDPartitioningResult", "kd_partition"]


@dataclass(frozen=True)
class KDPartitioningResult:
    """Outcome of a k-d tree partitioning.

    Attributes
    ----------
    columns:
        Predicate columns the partitioning spans.
    boxes:
        Leaf boxes; mutually exclusive and jointly covering the space.
    leaf_depths:
        Depth of each leaf in the k-d tree (root = 0).
    objective:
        Approximate max single-leaf query variance of the final partitioning.
    """

    columns: tuple[str, ...]
    boxes: tuple[Box, ...]
    leaf_depths: tuple[int, ...]
    objective: float

    @property
    def n_partitions(self) -> int:
        """Number of leaf partitions."""
        return len(self.boxes)


@dataclass
class _Leaf:
    """A leaf of the growing k-d tree during optimization."""

    box: Box
    indices: np.ndarray
    depth: int
    score: float = 0.0
    splittable: bool = True

    def can_split(self) -> bool:
        """True while the leaf holds at least two sample points and no split failed."""
        return self.splittable and self.indices.shape[0] > 1


def _leaf_score(values: np.ndarray, agg: AggregateType, delta_samples: int) -> float:
    """Approximate max in-leaf query variance used to rank leaves.

    For SUM / COUNT templates the leaf's own variance term is a constant-factor
    proxy for its worst in-leaf query (Appendix A.3); for AVG the worst query
    spans about ``delta * m`` samples, so the leaf variance is normalized by
    that window size (the "second algorithm" of Appendix A.4).
    """
    n = values.shape[0]
    if n <= 1:
        return 0.0
    total = float(values.sum())
    total_sq = float((values**2).sum())
    if agg == AggregateType.AVG:
        window = max(1, min(delta_samples, n // 2))
        return avg_query_variance(n, window, total, total_sq)
    if agg == AggregateType.COUNT:
        return float(n)
    return sum_query_variance(n, total, total_sq)


def _split_leaf(
    leaf: _Leaf,
    points: np.ndarray,
    columns: Sequence[str],
) -> list[_Leaf]:
    """Split a leaf at the per-dimension medians of its sample points.

    Dimensions whose values are all identical within the leaf are not split
    (they would create empty children), so the effective fan-out is ``2^d'``
    where ``d'`` is the number of splittable dimensions.  Returns an empty
    list when the leaf cannot be split at all.
    """
    if leaf.indices.shape[0] <= 1:
        return []
    local = points[leaf.indices]
    splittable: list[tuple[int, float]] = []
    for dim in range(local.shape[1]):
        low = float(local[:, dim].min())
        high = float(local[:, dim].max())
        if low < high:
            median = float(np.median(local[:, dim]))
            # Guard against a median equal to the maximum, which would put
            # every point on the left side and create an empty right child.
            if median >= high:
                median = float(np.nextafter(high, low))
            splittable.append((dim, median))
    if not splittable:
        return []

    children: list[_Leaf] = []
    for sides in itertools.product((0, 1), repeat=len(splittable)):
        box_intervals = leaf.box.intervals
        mask = np.ones(local.shape[0], dtype=bool)
        for (dim, median), side in zip(splittable, sides):
            column = columns[dim]
            interval = leaf.box.interval(column)
            if side == 0:
                box_intervals[column] = Interval(interval.low, median)
                mask &= local[:, dim] <= median
            else:
                box_intervals[column] = Interval(
                    float(np.nextafter(median, np.inf)), interval.high
                )
                mask &= local[:, dim] > median
        children.append(
            _Leaf(
                box=Box(box_intervals),
                indices=leaf.indices[mask],
                depth=leaf.depth + 1,
            )
        )
    return children


def kd_partition(
    table: Table,
    value_column: str,
    predicate_columns: Sequence[str],
    n_leaves: int,
    policy: str = "max_variance",
    agg: AggregateType | str = AggregateType.SUM,
    delta: float = 0.01,
    opt_sample_size: int | None = None,
    max_depth_spread: int = 2,
    rng: np.random.Generator | int | None = 0,
) -> KDPartitioningResult:
    """Grow a k-d tree partitioning of the predicate space.

    Parameters
    ----------
    table, value_column, predicate_columns:
        Dataset and column roles; the boxes span ``predicate_columns``.
    n_leaves:
        Target number of leaf partitions ``k``.
    policy:
        ``"max_variance"`` (KD-PASS) or ``"breadth_first"`` (KD-US).
    agg:
        Query template the variance scores target.
    delta:
        Meaningful-query fraction used by the AVG leaf score.
    opt_sample_size:
        Uniform optimization sample size (default ``min(5000, N)``).
    max_depth_spread:
        Maximum allowed difference between the deepest and shallowest leaf
        (the paper uses 2 to keep the tree roughly balanced).
    rng:
        Numpy generator or seed.
    """
    if policy not in ("max_variance", "breadth_first"):
        raise ValueError("policy must be 'max_variance' or 'breadth_first'")
    if n_leaves <= 0:
        raise ValueError("n_leaves must be positive")
    if not predicate_columns:
        raise ValueError("at least one predicate column is required")
    agg = AggregateType.parse(agg)
    generator = (
        rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    )
    columns = list(predicate_columns)

    if opt_sample_size is None:
        opt_sample_size = min(5000, table.n_rows)
    opt_sample_size = min(opt_sample_size, table.n_rows)
    sample_idx = generator.choice(table.n_rows, size=opt_sample_size, replace=False)
    points = np.column_stack(
        [table.column(column)[sample_idx].astype(float) for column in columns]
    )
    values = table.column(value_column)[sample_idx].astype(float)
    delta_samples = max(1, int(round(delta * opt_sample_size)))

    root = _Leaf(
        box=Box.unbounded(columns),
        indices=np.arange(opt_sample_size),
        depth=0,
    )
    root.score = _leaf_score(values[root.indices], agg, delta_samples)
    leaves: list[_Leaf] = [root]

    while len(leaves) < n_leaves:
        splittable = [leaf for leaf in leaves if leaf.can_split()]
        if not splittable:
            break
        min_depth = min(leaf.depth for leaf in leaves)
        if policy == "breadth_first":
            shallowest = min(leaf.depth for leaf in splittable)
            candidates = [leaf for leaf in splittable if leaf.depth == shallowest]
            chosen = candidates[int(generator.integers(0, len(candidates)))]
        else:
            eligible = [
                leaf
                for leaf in splittable
                if leaf.depth + 1 - min_depth <= max_depth_spread
            ]
            if not eligible:
                eligible = splittable
            chosen = max(eligible, key=lambda leaf: leaf.score)
        children = _split_leaf(chosen, points, columns)
        if not children:
            # Every dimension is constant inside this leaf: mark it so it is
            # never selected again.
            chosen.splittable = False
            continue
        for child in children:
            child.score = _leaf_score(values[child.indices], agg, delta_samples)
        leaves.remove(chosen)
        leaves.extend(children)

    objective = max((leaf.score for leaf in leaves), default=0.0)
    return KDPartitioningResult(
        columns=tuple(columns),
        boxes=tuple(leaf.box for leaf in leaves),
        leaf_depths=tuple(leaf.depth for leaf in leaves),
        objective=float(max(objective, 0.0)),
    )
