"""Scatter-gather query execution over per-shard PASS synopses.

A :class:`ShardedSynopsis` answers :class:`~repro.query.query.AggregateQuery`
objects from a collection of per-shard synopses the way a distributed AQP
engine would:

1. **Prune** — shards whose key range cannot overlap the query predicate are
   skipped entirely (range shards; hash shards prune only under point
   predicates on the shard column).
2. **Scatter** — surviving shards answer the query independently; the
   per-shard work reuses the vectorized batch path of
   :mod:`repro.core.batching`, so shards touched by several queries of a
   batch evaluate their sample masks once.
3. **Gather** — per-shard unbiased estimates and variances are merged into a
   single :class:`~repro.result.AQPResult`:

   * SUM / COUNT: estimates and variances add (shard samples are drawn
     independently), and the deterministic hard bounds add as well;
   * AVG: the ratio of the *combined* SUM and COUNT estimates (delta
     method), with hard bounds merged as the extrema of per-shard AVG
     bounds (a weighted average lies between its parts);
   * MIN / MAX: extrema merge of the per-shard answers and bounds.

   The merged answer is exact iff every surviving shard's answer is exact —
   the deterministic tree components merge exactly because PASS's partition
   statistics are mergeable.

Sketch aggregates (QUANTILE / COUNT_DISTINCT) follow the same discipline
one level lower: scalar per-shard answers cannot merge (a quantile of
quantiles is meaningless), so each surviving shard reduces the query to its
mergeable *sketch union* (:meth:`PASSSynopsis.sketch_union`), the gather
phase merges the unions — sketch merges plus additive boundary slack — and
one :func:`~repro.core.pass_synopsis.sketch_union_result` call produces the
answer.  The merged certified bounds therefore cover the same rank / count
error terms as a single synopsis over the union of the shards' data, which
is exactly the metamorphic property the hypothesis test layer asserts.

Because the shard population statistics are exact, the merged estimate of a
SUM / COUNT query equals the sum of the per-shard estimates bit for bit, and
the merged variance the sum of the per-shard variances — the property the
acceptance tests assert.

Streaming updates route to the owning shard's
:class:`~repro.core.updates.DynamicPASS`; the higher-level rebuild policy
lives in :class:`repro.distributed.router.StreamingShardRouter`.
"""

from __future__ import annotations

import math
from dataclasses import replace
from typing import TYPE_CHECKING, Mapping, Sequence

import numpy as np

from repro.core.batching import batch_query
from repro.core.pass_synopsis import PASSSynopsis, sketch_union_result
from repro.core.tree import PartitionNode, boxes_from_arrays, boxes_to_arrays
from repro.core.updates import DynamicPASS
from repro.distributed.planner import ShardRouting
from repro.obs import Observability
from repro.query.aggregates import SKETCH_AGGREGATES, AggregateType
from repro.query.groupby import GroupByPlan, GroupByQuery, GroupedResult, execute_plan
from repro.query.predicate import Box
from repro.query.query import AggregateQuery
from repro.result import AQPResult, LAMBDA_99
from repro.sampling.estimators import EstimateWithVariance, ratio_estimate

if TYPE_CHECKING:
    from repro.obs.metrics import Counter, NullCounter

__all__ = ["ShardedSynopsis"]

_FORMAT = 1


def _pass_of(shard: PASSSynopsis | DynamicPASS) -> PASSSynopsis:
    """The underlying static synopsis of a shard."""
    return shard.synopsis if isinstance(shard, DynamicPASS) else shard


class ShardedSynopsis:
    """A horizontally sharded PASS synopsis with scatter-gather queries.

    Parameters
    ----------
    shards:
        Per-shard synopses (:class:`PASSSynopsis` for read-only shards,
        :class:`DynamicPASS` for shards accepting streaming updates), aligned
        with ``key_boxes``.
    key_boxes:
        The region of shard-column space each shard owns (from the
        :class:`~repro.distributed.planner.ShardPlan`).
    shard_column:
        The column the table was sharded on.
    strategy:
        ``"range"`` or ``"hash"`` — decides how queries are pruned and how
        streaming updates are routed.
    lam:
        Confidence-interval multiplier applied to merged variances.
    hash_modulus / hash_owners:
        Hash-routing metadata for ``strategy="hash"`` plans (see
        :class:`~repro.distributed.planner.ShardRouting`).
    build_seconds:
        Wall-clock build cost (for parallel builds: the critical path, not
        the per-shard sum).
    """

    def __init__(
        self,
        shards: Sequence[PASSSynopsis | DynamicPASS],
        key_boxes: Sequence[Box],
        shard_column: str,
        strategy: str = "range",
        lam: float = LAMBDA_99,
        hash_modulus: int | None = None,
        hash_owners: Sequence[int] = (),
        build_seconds: float = 0.0,
    ) -> None:
        shards = list(shards)
        key_boxes = list(key_boxes)
        if not shards:
            raise ValueError("a sharded synopsis needs at least one shard")
        if len(shards) != len(key_boxes):
            raise ValueError(
                f"{len(shards)} shards but {len(key_boxes)} key boxes were given"
            )
        value_columns = {_pass_of(shard).value_column for shard in shards}
        if len(value_columns) != 1:
            raise ValueError(
                f"shards aggregate different value columns: {sorted(value_columns)}"
            )
        if strategy == "hash" and hash_modulus is None:
            raise ValueError("hash sharding requires hash_modulus")
        self._shards = shards
        self._key_boxes = key_boxes
        self._shard_column = shard_column
        self._strategy = strategy
        self._lam = lam
        self._routing = ShardRouting(
            strategy=strategy,
            shard_column=shard_column,
            key_boxes=tuple(key_boxes),
            hash_modulus=hash_modulus,
            hash_owners=tuple(hash_owners),
        )
        self.build_seconds = build_seconds
        obs = Observability.disabled()
        self._obs = obs
        self._m_queries: "Counter | NullCounter" = obs.metrics.counter(
            "repro_sharded_queries_total", "Queries answered by scatter-gather."
        )
        self._m_pruned: "Counter | NullCounter" = obs.metrics.counter(
            "repro_sharded_shards_pruned_total",
            "Shard visits skipped by key-range pruning.",
        )

    def bind_obs(self, obs: Observability) -> None:
        """Attach an observability context (idempotent; no-op when disabled).

        Called by :meth:`~repro.serving.catalog.SynopsisCatalog.bind_obs`
        when a sharded synopsis is registered into an instrumented catalog.
        """
        if not obs.enabled or self._obs.enabled:
            return
        self._obs = obs
        self._m_queries = obs.metrics.counter(
            "repro_sharded_queries_total", "Queries answered by scatter-gather."
        )
        self._m_pruned = obs.metrics.counter(
            "repro_sharded_shards_pruned_total",
            "Shard visits skipped by key-range pruning.",
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shards(self) -> list[PASSSynopsis | DynamicPASS]:
        """The per-shard synopses, in shard order."""
        return list(self._shards)

    @property
    def key_boxes(self) -> list[Box]:
        """The per-shard key ranges, in shard order."""
        return list(self._key_boxes)

    @property
    def n_shards(self) -> int:
        """Number of shards."""
        return len(self._shards)

    @property
    def shard_column(self) -> str:
        """The column the data was sharded on."""
        return self._shard_column

    @property
    def strategy(self) -> str:
        """The sharding strategy (``"range"`` or ``"hash"``)."""
        return self._strategy

    @property
    def value_column(self) -> str:
        """The aggregation column every shard answers queries about."""
        return _pass_of(self._shards[0]).value_column

    @property
    def population_size(self) -> int:
        """Total number of tuples across all shards."""
        return sum(_pass_of(shard).population_size for shard in self._shards)

    @property
    def sample_size(self) -> int:
        """Total number of stored sample tuples across all shards."""
        return sum(_pass_of(shard).sample_size for shard in self._shards)

    @property
    def n_partitions(self) -> int:
        """Total number of leaf partitions across all shards."""
        return sum(_pass_of(shard).n_partitions for shard in self._shards)

    @property
    def supports_updates(self) -> bool:
        """True when every shard accepts streaming updates."""
        return all(isinstance(shard, DynamicPASS) for shard in self._shards)

    @property
    def staleness(self) -> float:
        """Worst per-shard update drift (0.0 for all-static shards)."""
        stalenesses = self.per_shard_staleness()
        return max(stalenesses) if stalenesses else 0.0

    def per_shard_staleness(self) -> list[float]:
        """Update drift of each shard (0.0 for static shards)."""
        return [
            shard.staleness if isinstance(shard, DynamicPASS) else 0.0
            for shard in self._shards
        ]

    @property
    def supports_sketches(self) -> bool:
        """True when every shard can answer QUANTILE / COUNT_DISTINCT."""
        return all(_pass_of(shard).has_sketches for shard in self._shards)

    @property
    def sketch_staleness(self) -> float:
        """Worst per-shard sketch drift from unabsorbed deletions."""
        stalenesses = self.per_shard_sketch_staleness()
        return max(stalenesses) if stalenesses else 0.0

    def per_shard_sketch_staleness(self) -> list[float]:
        """Sketch drift of each shard (0.0 for static shards)."""
        return [
            shard.sketch_staleness if isinstance(shard, DynamicPASS) else 0.0
            for shard in self._shards
        ]

    @property
    def extrema_staleness(self) -> float:
        """Worst per-shard extrema drift from extremum-hitting deletions."""
        stalenesses = self.per_shard_extrema_staleness()
        return max(stalenesses) if stalenesses else 0.0

    def per_shard_extrema_staleness(self) -> list[float]:
        """Extrema drift of each shard (0.0 for static shards)."""
        return [
            shard.extrema_staleness if isinstance(shard, DynamicPASS) else 0.0
            for shard in self._shards
        ]

    def storage_bytes(self) -> int:
        """Total synopsis footprint across all shards."""
        return sum(_pass_of(shard).storage_bytes() for shard in self._shards)

    # ------------------------------------------------------------------
    # Shard routing
    # ------------------------------------------------------------------
    def shard_for_value(self, value: float) -> int:
        """Index of the shard owning a shard-column value."""
        return self._routing.shard_for_value(value)

    def shard_for_row(self, row: Mapping[str, float]) -> int:
        """Index of the shard owning a row."""
        return self._routing.shard_for_row(row)

    def leaf_for_point(self, point: Mapping[str, float]) -> PartitionNode:
        """The owning shard's leaf containing a predicate-column point.

        Serving layers use the leaf's box to invalidate exactly the cached
        results an update can affect.
        """
        shard = self._shards[self.shard_for_row(point)]
        return _pass_of(shard).tree.leaf_for_point(dict(point))

    def surviving_shards(self, query: AggregateQuery) -> list[int]:
        """Shards whose key range may contain tuples matching the query.

        Range shards are pruned by interval geometry; hash shards only under
        a point predicate on the shard column (one bucket owns the key).
        """
        predicate = query.predicate
        if self._strategy == "hash":
            interval = predicate.interval(self._shard_column)
            if interval.low == interval.high:
                return [self.shard_for_value(interval.low)]
            return list(range(self.n_shards))
        return [
            index
            for index, box in enumerate(self._key_boxes)
            if predicate.overlaps_box(box)
        ]

    # ------------------------------------------------------------------
    # Streaming updates
    # ------------------------------------------------------------------
    def insert(self, row: Mapping[str, float]) -> int:
        """Insert one tuple into the owning shard; returns the shard index."""
        index = self.shard_for_row(row)
        shard = self._shards[index]
        if not isinstance(shard, DynamicPASS):
            raise TypeError(
                f"shard {index} is static; build the sharded synopsis with "
                "dynamic=True to accept streaming updates"
            )
        shard.insert(row)
        return index

    def delete(self, row: Mapping[str, float]) -> int:
        """Delete one tuple from the owning shard; returns the shard index."""
        index = self.shard_for_row(row)
        shard = self._shards[index]
        if not isinstance(shard, DynamicPASS):
            raise TypeError(
                f"shard {index} is static; build the sharded synopsis with "
                "dynamic=True to accept streaming updates"
            )
        shard.delete(row)
        return index

    def replace_shard(self, index: int, shard: PASSSynopsis | DynamicPASS) -> None:
        """Atomically swap one shard's synopsis (per-shard rebuild support).

        The swap is a single reference assignment, so concurrent readers see
        either the old or the new shard — never a mixture — and reads on the
        other shards are never paused.
        """
        if not 0 <= index < len(self._shards):
            raise IndexError(f"shard index {index} out of range")
        if _pass_of(shard).value_column != self.value_column:
            raise ValueError(
                f"replacement shard aggregates {_pass_of(shard).value_column!r}, "
                f"expected {self.value_column!r}"
            )
        self._shards[index] = shard

    # ------------------------------------------------------------------
    # Scatter-gather query execution
    # ------------------------------------------------------------------
    def query(self, query: AggregateQuery, lam: float | None = None) -> AQPResult:
        """Answer one query by scatter-gather over the surviving shards."""
        return self.query_batch([query], lam=lam)[0]

    def query_batch(
        self, queries: Sequence[AggregateQuery], lam: float | None = None
    ) -> list[AQPResult]:
        """Answer a batch of queries; results align with the input order.

        The scatter phase groups the per-shard work of the whole batch: each
        shard answers all of its subqueries through the vectorized
        :func:`~repro.core.batching.batch_query` path in one pass (AVG
        queries fan out into SUM / COUNT / AVG subqueries whose combined
        estimates and bounds are merged in the gather phase).  Sketch
        aggregates (QUANTILE / COUNT_DISTINCT) gather per-shard *sketch
        unions* instead of scalar answers (see the module docstring).
        """
        queries = list(queries)
        lam = self._lam if lam is None else lam
        for query in queries:
            if query.value_column != self.value_column:
                raise ValueError(
                    f"sharded synopsis aggregates {self.value_column!r}, "
                    f"query aggregates {query.value_column!r}"
                )

        # Scatter planning: per shard, the deduplicated subquery list.
        # Sketch aggregates take the union-merging gather path instead.
        survivors: list[list[int]] = [self.surviving_shards(q) for q in queries]
        if self._obs.enabled:
            pruned = sum(self.n_shards - len(indices) for indices in survivors)
            self._m_queries.inc(float(len(queries)))
            if pruned:
                self._m_pruned.inc(float(pruned))
            ambient = self._obs.tracer.current()
            if ambient is not None:
                ambient.set_attribute("shards", self.n_shards)
                ambient.set_attribute("shards_pruned", pruned)
        shard_slots: list[dict[tuple, int]] = [{} for _ in self._shards]
        shard_queries: list[list[AggregateQuery]] = [[] for _ in self._shards]

        def enqueue(shard_index: int, subquery: AggregateQuery) -> None:
            slots = shard_slots[shard_index]
            key = subquery.cache_key()
            if key not in slots:
                slots[key] = len(shard_queries[shard_index])
                shard_queries[shard_index].append(subquery)

        for query, shard_indices in zip(queries, survivors):
            if query.agg in SKETCH_AGGREGATES:
                continue
            for sub in self._subqueries(query):
                for shard_index in shard_indices:
                    enqueue(shard_index, sub)

        # Scatter execution: one vectorized batch per surviving shard.
        shard_answers: list[list[AQPResult]] = [
            batch_query(_pass_of(self._shards[i]), subs) if subs else []
            for i, subs in enumerate(shard_queries)
        ]

        def answer(shard_index: int, subquery: AggregateQuery) -> AQPResult:
            slot = shard_slots[shard_index][subquery.cache_key()]
            return shard_answers[shard_index][slot]

        # Gather: merge the per-shard parts of each query.  Populations are
        # snapshotted once for the whole batch (the read path is hot).
        populations = [_pass_of(shard).population_size for shard in self._shards]
        total_population = sum(populations)
        results = []
        for query, shard_indices in zip(queries, survivors):
            if query.agg in SKETCH_AGGREGATES:
                results.append(self._gather_sketch(query, shard_indices))
                continue
            pruned_population = total_population - sum(
                populations[i] for i in shard_indices
            )
            results.append(
                self._gather(query, shard_indices, answer, lam, pruned_population)
            )
        return results

    def query_grouped(
        self, groupby: GroupByQuery | GroupByPlan, lam: float | None = None
    ) -> GroupedResult:
        """Answer a group-by query by scatter-gather over the shards.

        The compiled cell-major batch runs through :meth:`query_batch`, so
        per shard the whole grouped workload shares one vectorized mask pass
        per (leaf, group cell), shard pruning applies per cell, and the
        per-group SUM / COUNT / AVG / MIN / MAX answers merge across shards
        with the exact mergeable gather math of single-aggregate queries.

        A :class:`~repro.query.groupby.GroupByQuery` is compiled here when
        its groupings are explicit (bin edges or listed values);
        distinct-value discovery needs a table, so compile such queries
        first (see :meth:`GroupByQuery.compile`).
        """
        plan = groupby.compile() if isinstance(groupby, GroupByQuery) else groupby
        return execute_plan(
            plan,
            lambda queries: self.query_batch(queries, lam=lam),
            population=self.population_size,
        )

    # ------------------------------------------------------------------
    # Gather math
    # ------------------------------------------------------------------
    def _gather_sketch(
        self, query: AggregateQuery, shard_indices: Sequence[int]
    ) -> AQPResult:
        """Merged QUANTILE / COUNT_DISTINCT answer from per-shard sketch unions.

        Each surviving shard reduces the query to its mergeable sketch union
        along its own frontier; the unions merge exactly (sketch merges plus
        additive boundary slack) and one result assembly produces the
        answer — the same algebra a single synopsis over the union of the
        shards' data would run, which keeps sharded and single-synopsis
        estimates within each other's certified bounds.
        """
        union = None
        for index in shard_indices:
            shard_union = _pass_of(self._shards[index]).sketch_union(query)
            union = shard_union if union is None else union.merge(shard_union)
        if union is None:
            # Every shard pruned: the predicate region is provably empty.
            empty = query.agg == AggregateType.COUNT_DISTINCT
            value = 0.0 if empty else float("nan")
            return AQPResult(
                estimate=value,
                ci_half_width=0.0,
                variance=0.0,
                hard_lower=value,
                hard_upper=value,
                tuples_processed=0,
                tuples_skipped=self.population_size,
                exact=True,
            )
        return sketch_union_result(query, union, self.population_size)

    @staticmethod
    def _subqueries(query: AggregateQuery) -> list[AggregateQuery]:
        """The per-shard subqueries a query fans out into.

        AVG needs the combined SUM and COUNT estimates (the merged answer is
        their ratio) plus the per-shard AVG answers (their bounds merge into
        the deterministic AVG bounds).
        """
        if query.agg == AggregateType.AVG:
            return [
                replace(query, agg=AggregateType.SUM),
                replace(query, agg=AggregateType.COUNT),
                query,
            ]
        return [query]

    def _gather(
        self,
        query: AggregateQuery,
        shard_indices: Sequence[int],
        answer,
        lam: float,
        pruned_population: int,
    ) -> AQPResult:
        agg = query.agg
        if agg in (AggregateType.MIN, AggregateType.MAX):
            parts = [answer(i, query) for i in shard_indices]
            return self._merge_extremum(agg, parts, pruned_population)
        if agg == AggregateType.AVG:
            sums = [
                answer(i, replace(query, agg=AggregateType.SUM)) for i in shard_indices
            ]
            counts = [
                answer(i, replace(query, agg=AggregateType.COUNT))
                for i in shard_indices
            ]
            avgs = [answer(i, query) for i in shard_indices]
            return self._merge_avg(sums, counts, avgs, lam, pruned_population)
        parts = [answer(i, query) for i in shard_indices]
        return self._merge_additive(parts, lam, pruned_population)

    @staticmethod
    def _combine(parts: Sequence[AQPResult]) -> EstimateWithVariance:
        """Sum of independent per-shard estimates: estimates and variances add."""
        estimate = sum(part.estimate for part in parts)
        if any(math.isnan(part.variance) for part in parts):
            variance = float("nan")
        else:
            variance = sum(part.variance for part in parts)
        return EstimateWithVariance(float(estimate), float(variance))

    def _merge_additive(
        self, parts: Sequence[AQPResult], lam: float, pruned_population: int
    ) -> AQPResult:
        """Merged SUM / COUNT answer: everything adds (pruned shards add 0)."""
        combined = self._combine(parts) if parts else EstimateWithVariance(0.0, 0.0)
        exact = all(part.exact for part in parts)
        if exact:
            half_width, variance = 0.0, 0.0
        elif math.isnan(combined.variance):
            half_width, variance = float("nan"), float("nan")
        else:
            variance = combined.variance
            half_width = lam * math.sqrt(max(variance, 0.0))
        return AQPResult(
            estimate=combined.estimate,
            ci_half_width=half_width,
            variance=variance,
            hard_lower=sum(part.hard_lower for part in parts) if parts else 0.0,
            hard_upper=sum(part.hard_upper for part in parts) if parts else 0.0,
            tuples_processed=sum(part.tuples_processed for part in parts),
            tuples_skipped=sum(part.tuples_skipped for part in parts)
            + pruned_population,
            exact=exact,
        )

    def _merge_avg(
        self,
        sums: Sequence[AQPResult],
        counts: Sequence[AQPResult],
        avgs: Sequence[AQPResult],
        lam: float,
        pruned_population: int,
    ) -> AQPResult:
        """Merged AVG: ratio of the combined SUM and COUNT estimates.

        The deterministic bounds are the extrema of the per-shard AVG bounds:
        the overall average is a weighted average of the per-shard averages,
        so it lies between the loosest of their bounds.
        """
        combined_sum = self._combine(sums) if sums else EstimateWithVariance(0.0, 0.0)
        combined_count = (
            self._combine(counts) if counts else EstimateWithVariance(0.0, 0.0)
        )
        exact = all(part.exact for part in sums) and all(part.exact for part in counts)
        if combined_count.estimate == 0:
            estimate = EstimateWithVariance(float("nan"), float("nan"))
        elif exact:
            estimate = EstimateWithVariance(
                combined_sum.estimate / combined_count.estimate, 0.0
            )
        else:
            estimate = ratio_estimate(combined_sum, combined_count)

        lowers = [part.hard_lower for part in avgs if not math.isnan(part.hard_lower)]
        uppers = [part.hard_upper for part in avgs if not math.isnan(part.hard_upper)]
        if exact:
            half_width, variance = 0.0, 0.0
        elif math.isnan(estimate.variance):
            half_width, variance = float("nan"), float("nan")
        else:
            variance = estimate.variance
            half_width = lam * math.sqrt(max(variance, 0.0))
        return AQPResult(
            estimate=estimate.estimate,
            ci_half_width=half_width,
            variance=variance,
            hard_lower=min(lowers) if lowers else float("nan"),
            hard_upper=max(uppers) if uppers else float("nan"),
            tuples_processed=sum(part.tuples_processed for part in avgs),
            tuples_skipped=sum(part.tuples_skipped for part in avgs)
            + pruned_population,
            exact=exact,
        )

    @staticmethod
    def _merge_extremum(
        agg: AggregateType, parts: Sequence[AQPResult], pruned_population: int
    ) -> AQPResult:
        """Merged MIN / MAX answer: extrema of estimates and of bounds."""
        pick = max if agg == AggregateType.MAX else min
        estimates = [part.estimate for part in parts if not math.isnan(part.estimate)]
        estimate = float(pick(estimates)) if estimates else float("nan")
        exact = all(part.exact for part in parts)
        # The merged extremum of valid per-shard bounds is itself a valid
        # bound (infinities are dominated whenever any shard has a finite one).
        lowers = [part.hard_lower for part in parts if not math.isnan(part.hard_lower)]
        uppers = [part.hard_upper for part in parts if not math.isnan(part.hard_upper)]
        return AQPResult(
            estimate=estimate,
            ci_half_width=0.0 if exact else float("nan"),
            variance=0.0 if exact else float("nan"),
            hard_lower=float(pick(lowers)) if lowers else float("nan"),
            hard_upper=float(pick(uppers)) if uppers else float("nan"),
            tuples_processed=sum(part.tuples_processed for part in parts),
            tuples_skipped=sum(part.tuples_skipped for part in parts)
            + pruned_population,
            exact=exact,
        )

    # ------------------------------------------------------------------
    # Persistence (array export / import)
    # ------------------------------------------------------------------
    def to_arrays(self) -> tuple[dict[str, np.ndarray], dict]:
        """Export every shard plus the routing metadata as flat arrays.

        Shard arrays are namespaced under ``shard<i>/``; the key boxes are
        stored under ``router/``.  The round trip through :meth:`from_arrays`
        is exact per shard, so a reloaded sharded synopsis returns
        bit-identical merged estimates.
        """
        arrays: dict[str, np.ndarray] = {}
        shard_headers: list[dict] = []
        for i, shard in enumerate(self._shards):
            shard_arrays, shard_header = shard.to_arrays()
            if not isinstance(shard, DynamicPASS):
                shard_header["kind"] = "pass"
            for key, value in shard_arrays.items():
                arrays[f"shard{i}/{key}"] = value
            shard_headers.append(shard_header)
        for key, value in boxes_to_arrays(self._key_boxes).items():
            arrays[f"router/box_{key}"] = value
        header = {
            "format": _FORMAT,
            "kind": "sharded",
            "value_column": self.value_column,
            "shard_column": self._shard_column,
            "strategy": self._strategy,
            "lam": self._lam,
            "n_shards": self.n_shards,
            "hash_modulus": self._routing.hash_modulus,
            "hash_owners": list(self._routing.hash_owners),
            "build_seconds": self.build_seconds,
            "shard_headers": shard_headers,
        }
        return arrays, header

    @classmethod
    def from_arrays(
        cls, arrays: Mapping[str, np.ndarray], header: Mapping
    ) -> "ShardedSynopsis":
        """Rebuild a sharded synopsis exported with :meth:`to_arrays`."""
        shard_headers = header["shard_headers"]
        shards: list[PASSSynopsis | DynamicPASS] = []
        for i, shard_header in enumerate(shard_headers):
            prefix = f"shard{i}/"
            shard_arrays = {
                key[len(prefix) :]: value
                for key, value in arrays.items()
                if key.startswith(prefix)
            }
            if shard_header.get("kind") == "dynamic":
                shards.append(DynamicPASS.from_arrays(shard_arrays, shard_header))
            else:
                shards.append(
                    PASSSynopsis.from_arrays(shard_arrays, dict(shard_header))
                )
        key_boxes = boxes_from_arrays(
            {
                key[len("router/box_") :]: value
                for key, value in arrays.items()
                if key.startswith("router/box_")
            }
        )
        return cls(
            shards=shards,
            key_boxes=key_boxes,
            shard_column=str(header["shard_column"]),
            strategy=str(header["strategy"]),
            lam=float(header["lam"]),
            hash_modulus=(
                None
                if header.get("hash_modulus") is None
                else int(header["hash_modulus"])
            ),
            hash_owners=tuple(int(owner) for owner in header.get("hash_owners", ())),
            build_seconds=float(header.get("build_seconds", 0.0)),
        )
