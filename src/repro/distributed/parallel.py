"""Building per-shard synopses concurrently across CPU cores.

The PASS build (partitioning optimization, exact per-leaf statistics,
stratified sampling) is CPU-bound pure-Python/numpy work, so building one
synopsis per shard parallelizes cleanly across processes:

* the parent ships each worker a picklable :class:`ShardBuildSpec` (the
  shard's raw numpy columns plus the build configuration);
* the worker builds the shard synopsis and returns its flat-array export
  (:meth:`PASSSynopsis.to_arrays` / :meth:`DynamicPASS.to_arrays`) — arrays
  and a JSON-safe header, both cheap to pickle and exact;
* the parent reassembles the shards with the matching ``from_arrays`` and
  wires them into a :class:`~repro.distributed.sharded.ShardedSynopsis`.

Because every build is seeded, the result is bit-identical no matter how
many workers ran it (``executor="serial"`` exists for tests and platforms
without ``fork``), and the wall-clock cost is the per-shard critical path
instead of the sum — the speedup ``benchmarks/bench_distributed.py``
measures.
"""

from __future__ import annotations

import multiprocessing
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.core.builder import build_pass
from repro.core.config import PASSConfig
from repro.core.pass_synopsis import PASSSynopsis
from repro.core.updates import DynamicPASS
from repro.data.table import Table
from repro.distributed.planner import ShardPlan, ShardPlanner
from repro.distributed.sharded import ShardedSynopsis

__all__ = [
    "ShardBuildSpec",
    "ParallelBuilder",
    "build_sharded_pass",
    "EXECUTORS",
    "SPAWN_CONTEXT",
]

#: Valid values of :attr:`ParallelBuilder.executor`.
EXECUTORS = ("process", "thread", "serial")

#: The one multiprocessing context every pool in this codebase uses.  The
#: platform default on Linux is ``fork``, which clones a process that may be
#: holding serving locks, metrics-registry mutexes, or the accuracy auditor's
#: daemon-thread state mid-operation — a forked child then deadlocks the
#: moment it touches one of those orphaned locks.  ``spawn`` starts workers
#: from a clean interpreter, which is safe to combine with the threaded
#: serving stack (and is the only start method the shared-memory serving
#: workers in :mod:`repro.serving.server` support).
SPAWN_CONTEXT = multiprocessing.get_context("spawn")


@dataclass(frozen=True)
class ShardBuildSpec:
    """Everything a worker needs to build one shard's synopsis (picklable).

    Attributes
    ----------
    columns:
        The shard's raw column arrays (the worker reassembles the
        :class:`~repro.data.table.Table` from them).
    table_name / value_column / predicate_columns / config:
        Passed through to :func:`~repro.core.builder.build_pass` (or
        :class:`~repro.core.updates.DynamicPASS` when ``dynamic``).
    dynamic:
        Build a streaming-updatable :class:`DynamicPASS` instead of a static
        synopsis.
    extra_sample_columns:
        Columns retained in the shard samples beyond the value / predicate
        columns — the builder passes the shard column here when it is not a
        predicate column, so shard-column predicates stay evaluable inside
        every shard.
    """

    columns: Mapping[str, np.ndarray]
    table_name: str
    value_column: str
    predicate_columns: tuple[str, ...]
    config: PASSConfig
    dynamic: bool = False
    extra_sample_columns: tuple[str, ...] = ()


def _build_shard(spec: ShardBuildSpec) -> tuple[dict[str, np.ndarray], dict]:
    """Worker entry point: build one shard and export it as flat arrays."""
    table = Table(dict(spec.columns), name=spec.table_name)
    if spec.dynamic:
        shard = DynamicPASS(
            table,
            spec.value_column,
            list(spec.predicate_columns),
            spec.config,
            extra_sample_columns=list(spec.extra_sample_columns),
        )
        return shard.to_arrays()
    synopsis = build_pass(
        table,
        spec.value_column,
        list(spec.predicate_columns),
        spec.config,
        extra_sample_columns=list(spec.extra_sample_columns),
    )
    arrays, header = synopsis.to_arrays()
    header["kind"] = "pass"
    return arrays, header


def _restore_shard(
    arrays: dict[str, np.ndarray], header: dict
) -> PASSSynopsis | DynamicPASS:
    """Parent-side reassembly of a worker's export."""
    if header.get("kind") == "dynamic":
        return DynamicPASS.from_arrays(arrays, header)
    return PASSSynopsis.from_arrays(arrays, header)


class ParallelBuilder:
    """Builds the shards of a :class:`ShardPlan` concurrently.

    Parameters
    ----------
    max_workers:
        Worker count for the process / thread executors (``None`` lets the
        executor pick the machine's core count).
    executor:
        ``"process"`` (multi-core, the default), ``"thread"`` (shares the
        GIL — useful only when numpy releases it), or ``"serial"`` (inline,
        for tests and platforms without cheap process spawning).
    """

    def __init__(
        self, max_workers: int | None = None, executor: str = "process"
    ) -> None:
        if executor not in EXECUTORS:
            raise ValueError(
                f"unknown executor {executor!r}; choices: {', '.join(EXECUTORS)}"
            )
        if max_workers is not None and max_workers <= 0:
            raise ValueError("max_workers must be positive")
        self.max_workers = max_workers
        self.executor = executor

    def build(
        self,
        plan: ShardPlan,
        value_column: str,
        predicate_columns: Sequence[str] | None = None,
        config: PASSConfig | None = None,
        dynamic: bool = False,
    ) -> ShardedSynopsis:
        """Build one synopsis per shard of ``plan`` and assemble the result.

        Parameters
        ----------
        plan:
            The shard plan (key boxes + table chunks) from a
            :class:`~repro.distributed.planner.ShardPlanner`.
        value_column / predicate_columns / config:
            Per-shard build parameters; ``predicate_columns`` defaults to the
            shard column, and each shard's config gets a distinct seed
            (``config.seed + shard index``) so shard samples are independent.
        dynamic:
            Build every shard as a :class:`DynamicPASS` so the sharded
            synopsis accepts streaming updates.
        """
        config = config or PASSConfig()
        predicate_columns = tuple(
            predicate_columns if predicate_columns is not None else [plan.shard_column]
        )
        keep = [value_column] + [c for c in predicate_columns if c != value_column]
        extra_sample_columns: tuple[str, ...] = ()
        if plan.shard_column not in keep:
            keep.append(plan.shard_column)
            # Keep the shard column in the shard samples so predicates that
            # constrain it remain evaluable inside every shard.
            extra_sample_columns = (plan.shard_column,)
        specs = [
            ShardBuildSpec(
                columns=table.columns(keep),
                table_name=table.name,
                value_column=value_column,
                predicate_columns=predicate_columns,
                config=config.with_overrides(seed=config.seed + index),
                dynamic=dynamic,
                extra_sample_columns=extra_sample_columns,
            )
            for index, table in enumerate(plan.tables)
        ]
        start = time.perf_counter()
        exports = self._run(specs)
        build_seconds = time.perf_counter() - start
        shards = [_restore_shard(arrays, header) for arrays, header in exports]
        return ShardedSynopsis(
            shards=shards,
            key_boxes=plan.key_boxes,
            shard_column=plan.shard_column,
            strategy=plan.strategy,
            lam=config.lam,
            hash_modulus=plan.hash_modulus,
            hash_owners=plan.hash_owners,
            build_seconds=build_seconds,
        )

    def _run(
        self, specs: Sequence[ShardBuildSpec]
    ) -> list[tuple[dict[str, np.ndarray], dict]]:
        if self.executor == "serial" or len(specs) <= 1:
            return [_build_shard(spec) for spec in specs]
        workers = self.max_workers
        if workers is not None:
            workers = min(workers, len(specs))
        if self.executor == "process":
            # Pinned to the spawn context: see SPAWN_CONTEXT.  Forked
            # children inherit whatever locks the serving threads held at
            # fork time and can deadlock the shard builds.
            pool: ProcessPoolExecutor | ThreadPoolExecutor = ProcessPoolExecutor(
                max_workers=workers, mp_context=SPAWN_CONTEXT
            )
        else:
            pool = ThreadPoolExecutor(max_workers=workers)
        with pool:
            return list(pool.map(_build_shard, specs))


def build_sharded_pass(
    table: Table,
    value_column: str,
    shard_column: str,
    n_shards: int = 4,
    strategy: str = "range",
    predicate_columns: Sequence[str] | None = None,
    config: PASSConfig | None = None,
    dynamic: bool = False,
    max_workers: int | None = None,
    executor: str = "process",
) -> ShardedSynopsis:
    """One-call convenience: plan the shards, build them in parallel.

    Equivalent to ``ShardPlanner(n_shards, strategy).plan(table, shard_column)``
    followed by :meth:`ParallelBuilder.build`.
    """
    plan = ShardPlanner(n_shards, strategy).plan(table, shard_column)
    builder = ParallelBuilder(max_workers=max_workers, executor=executor)
    return builder.build(
        plan,
        value_column,
        predicate_columns=predicate_columns,
        config=config,
        dynamic=dynamic,
    )
