"""Streaming updates over a sharded synopsis with per-shard rebuilds.

The :class:`StreamingShardRouter` is the write path of the distributed
layer.  It directs every insert / delete to the shard that owns the row's
shard-column value, tracks each shard's update drift
(:attr:`~repro.core.updates.DynamicPASS.staleness`), and — when a shard
drifts past the rebuild threshold — re-optimizes *that shard only*: the
replacement synopsis is built off to the side from the shard's current data
and swapped in with a single reference assignment
(:meth:`~repro.distributed.sharded.ShardedSynopsis.replace_shard`), so reads
against every other shard (and against the old copy of the rebuilding shard)
continue untouched.  This is the answering-queries-under-updates pattern:
updates are O(tree height) per tuple, and the expensive re-optimization is
amortized, localized to one shard, and never blocks the read path.

Mutations to one shard are serialized by a per-shard lock; different shards
update concurrently.  The router is the **single writer** for its synopsis:
once a router owns a :class:`ShardedSynopsis`, apply every insert / delete
through the router (not through ``ShardedSynopsis.insert`` or
``ServingEngine.insert`` directly) — a rebuild replays the router's own
delta log, so updates applied behind its back would be silently lost.
:meth:`StreamingShardRouter.rebuild` guards against that drift by checking
the materialized snapshot against the shard's live population and raising on
a mismatch.  When the synopsis is also registered in a caching
:class:`~repro.serving.engine.ServingEngine`, drop the engine's cached
results after router-applied updates (``engine.invalidate(name)``) — only
updates applied through the engine invalidate its cache automatically.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import asdict, dataclass
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.core.updates import DynamicPASS
from repro.data.table import Table
from repro.distributed.sharded import ShardedSynopsis
from repro.obs import Observability

__all__ = ["StreamingShardRouter", "ShardUpdateStats"]

#: Rebuild-duration histogram buckets (seconds): rebuilds are orders of
#: magnitude slower than queries, so the default latency buckets top out
#: too early for them.
_REBUILD_BUCKETS: tuple[float, ...] = (
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    30.0,
)


@dataclass(frozen=True)
class ShardUpdateStats:
    """Per-shard write-path telemetry snapshot.

    Attributes
    ----------
    inserts / deletes:
        Updates routed to the shard since the router was created.
    rebuilds:
        Number of re-optimizations the router triggered for the shard.
    staleness:
        The shard's current update drift (updates since its last build,
        normalized by its build-time population).
    population:
        The shard's current tuple count.
    sketch_staleness:
        The shard's QUANTILE / COUNT_DISTINCT sketch drift: deletions the
        mergeable sketches could not absorb, normalized by the build-time
        population (see :attr:`repro.core.updates.DynamicPASS.sketch_staleness`).
        A rebuild reconstructs the sketches and resets it to 0.0.
    extrema_staleness:
        The shard's extremum-delete drift: deletions that hit a partition
        MIN / MAX (leaving the bound conservative), normalized by the
        build-time population (see
        :attr:`repro.core.updates.DynamicPASS.extrema_staleness`).  A
        rebuild retightens the bounds and resets it to 0.0.
    """

    inserts: int
    deletes: int
    rebuilds: int
    staleness: float
    population: int
    sketch_staleness: float = 0.0
    extrema_staleness: float = 0.0

    def as_dict(self) -> dict[str, float | int]:
        """Field-name-keyed dict view (the serving stack's uniform
        ``as_dict()`` contract — see
        :meth:`repro.serving.stats.StatsSnapshot.as_dict`)."""
        return asdict(self)


class StreamingShardRouter:
    """Routes streaming inserts / deletes and rebuilds drifted shards.

    Parameters
    ----------
    sharded:
        The sharded synopsis to maintain; every shard must be a
        :class:`DynamicPASS` (build with ``dynamic=True``).
    shard_tables:
        The per-shard base tables from the :class:`ShardPlan`.  The router
        keeps them (plus the applied deltas) so a rebuild can materialize the
        shard's current data without touching the other shards.
    rebuild_threshold:
        Staleness ratio above which a shard is re-optimized (``None``
        disables automatic rebuilds; :meth:`rebuild` stays available).
    obs:
        The shared :class:`~repro.obs.Observability` context.  When enabled,
        every routed update increments ``repro_shard_updates_total`` (labeled
        by shard and kind), rebuilds count into ``repro_shard_rebuilds_total``
        and time into a ``repro_shard_rebuild_seconds`` histogram, and
        per-shard staleness is exported as scrape-time gauges.
    """

    def __init__(
        self,
        sharded: ShardedSynopsis,
        shard_tables: Sequence[Table],
        rebuild_threshold: float | None = 0.25,
        obs: Observability | None = None,
    ) -> None:
        if not sharded.supports_updates:
            raise TypeError(
                "every shard must be a DynamicPASS to route streaming updates "
                "(build the sharded synopsis with dynamic=True)"
            )
        if len(shard_tables) != sharded.n_shards:
            raise ValueError(
                f"{sharded.n_shards} shards but {len(shard_tables)} base tables"
            )
        if rebuild_threshold is not None and rebuild_threshold <= 0:
            raise ValueError("rebuild_threshold must be positive (or None)")
        self._sharded = sharded
        self._base_tables = list(shard_tables)
        self._rebuild_threshold = rebuild_threshold
        self._locks = [threading.RLock() for _ in range(sharded.n_shards)]
        self._inserted: list[list[dict[str, float]]] = [
            [] for _ in range(sharded.n_shards)
        ]
        self._deleted: list[list[dict[str, float]]] = [
            [] for _ in range(sharded.n_shards)
        ]
        self._insert_counts = [0] * sharded.n_shards
        self._delete_counts = [0] * sharded.n_shards
        self._rebuild_counts = [0] * sharded.n_shards
        self._swap_listeners: list[Callable[[int, DynamicPASS], None]] = []
        self._obs = obs if obs is not None else Observability.disabled()
        registry = self._obs.metrics
        update_help = "Streaming updates routed to each shard."
        self._m_inserts = [
            registry.counter(
                "repro_shard_updates_total",
                update_help,
                {"shard": str(index), "kind": "insert"},
            )
            for index in range(sharded.n_shards)
        ]
        self._m_deletes = [
            registry.counter(
                "repro_shard_updates_total",
                update_help,
                {"shard": str(index), "kind": "delete"},
            )
            for index in range(sharded.n_shards)
        ]
        self._m_rebuilds = [
            registry.counter(
                "repro_shard_rebuilds_total",
                "Per-shard re-optimizations triggered by staleness drift.",
                {"shard": str(index)},
            )
            for index in range(sharded.n_shards)
        ]
        self._m_rebuild_seconds = registry.histogram(
            "repro_shard_rebuild_seconds",
            "Wall-clock duration of per-shard rebuilds.",
            buckets=_REBUILD_BUCKETS,
        )
        if self._obs.enabled:
            for index in range(sharded.n_shards):
                registry.gauge(
                    "repro_shard_staleness",
                    "Per-shard update drift at scrape time.",
                    {"shard": str(index)},
                ).set_function(self._staleness_reader(index))
                registry.gauge(
                    "repro_shard_extrema_staleness",
                    "Per-shard extremum-delete drift at scrape time.",
                    {"shard": str(index)},
                ).set_function(self._extrema_staleness_reader(index))

    def _staleness_reader(self, index: int) -> Callable[[], float]:
        def read() -> float:
            shard = self._sharded.shards[index]
            return shard.staleness if isinstance(shard, DynamicPASS) else 0.0

        return read

    def _extrema_staleness_reader(self, index: int) -> Callable[[], float]:
        def read() -> float:
            shard = self._sharded.shards[index]
            return shard.extrema_staleness if isinstance(shard, DynamicPASS) else 0.0

        return read

    @property
    def sharded(self) -> ShardedSynopsis:
        """The maintained sharded synopsis."""
        return self._sharded

    @property
    def rebuild_threshold(self) -> float | None:
        """Staleness ratio that triggers an automatic per-shard rebuild."""
        return self._rebuild_threshold

    def add_swap_listener(
        self, listener: Callable[[int, DynamicPASS], None]
    ) -> None:
        """Invoke ``listener(shard_index, replacement)`` after each rebuild.

        Listeners fire right after the atomic :meth:`~repro.distributed.
        sharded.ShardedSynopsis.replace_shard` swap, still under the
        rebuilding shard's lock, so they observe swaps in order and never
        see a torn shard.  This is how the shared-memory publisher
        (:meth:`repro.serving.shm.SynopsisPublisher.watch_router`)
        republishes a rebuilt shard to the worker pool.  Listener
        exceptions propagate to the updater that triggered the rebuild.
        """
        self._swap_listeners.append(listener)

    def remove_swap_listener(
        self, listener: Callable[[int, DynamicPASS], None]
    ) -> None:
        """Detach a listener added with :meth:`add_swap_listener`."""
        self._swap_listeners.remove(listener)

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------
    def insert(self, row: Mapping[str, float]) -> int:
        """Insert one tuple into its owning shard; returns the shard index."""
        return self._apply(row, "insert")

    def delete(self, row: Mapping[str, float]) -> int:
        """Delete one tuple from its owning shard; returns the shard index."""
        return self._apply(row, "delete")

    def apply_many(
        self,
        rows: Sequence[Mapping[str, float]],
        kinds: str | Sequence[str] = "insert",
        max_workers: int | None = None,
    ) -> list[int]:
        """Apply a batch of updates with one fan-out pass per owning shard.

        This is the async tier's bulk write entry point: rows are grouped by
        owning shard first, each shard's slice is applied in arrival order
        under a *single* acquisition of that shard's lock, and — when
        ``max_workers`` asks for it — different shards apply their slices
        concurrently on a thread pool.  The per-shard locks make the fan-out
        safe to run from any thread (asyncio executor threads included), and
        per-shard ordering matches :meth:`insert` / :meth:`delete` call
        order because grouping preserves arrival order within a shard.

        Parameters
        ----------
        rows:
            The update payloads (every row must carry the shard's full
            schema, as with single-row updates).
        kinds:
            ``"insert"`` or ``"delete"`` applied to every row, or one kind
            per row.
        max_workers:
            When given (> 1), shard groups apply concurrently on a thread
            pool of at most this many workers; None applies shard groups
            sequentially in the calling thread.

        Returns the owning shard index per row, aligned with the input.
        """
        rows = list(rows)
        if isinstance(kinds, str):
            row_kinds = [kinds] * len(rows)
        else:
            row_kinds = list(kinds)
            if len(row_kinds) != len(rows):
                raise ValueError(f"{len(rows)} rows but {len(row_kinds)} update kinds")
        for kind in row_kinds:
            if kind not in ("insert", "delete"):
                raise ValueError(f"unknown update kind {kind!r}")

        indices = [self._sharded.shard_for_row(row) for row in rows]
        per_shard: dict[int, list[tuple[dict[str, float], str]]] = {}
        for index, row, kind in zip(indices, rows, row_kinds):
            per_shard.setdefault(index, []).append((self._full_row(index, row), kind))

        def apply_shard(index: int) -> None:
            with self._locks[index]:
                shard = self._sharded.shards[index]
                for record, kind in per_shard[index]:
                    if kind == "insert":
                        shard.insert(record)
                        self._inserted[index].append(record)
                        self._insert_counts[index] += 1
                        self._m_inserts[index].inc()
                    else:
                        shard.delete(record)
                        self._deleted[index].append(record)
                        self._delete_counts[index] += 1
                        self._m_deletes[index].inc()
                if (
                    self._rebuild_threshold is not None
                    and shard.staleness >= self._rebuild_threshold
                ):
                    self._rebuild_locked(index)

        if max_workers is not None and max_workers > 1 and len(per_shard) > 1:
            with ThreadPoolExecutor(
                max_workers=min(max_workers, len(per_shard))
            ) as pool:
                for future in [pool.submit(apply_shard, index) for index in per_shard]:
                    future.result()
        else:
            for index in per_shard:
                apply_shard(index)
        return indices

    def _apply(self, row: Mapping[str, float], kind: str) -> int:
        index = self._sharded.shard_for_row(row)
        record = self._full_row(index, row)
        with self._locks[index]:
            shard = self._sharded.shards[index]
            if kind == "insert":
                shard.insert(record)
                self._inserted[index].append(record)
                self._insert_counts[index] += 1
                self._m_inserts[index].inc()
            else:
                shard.delete(record)
                self._deleted[index].append(record)
                self._delete_counts[index] += 1
                self._m_deletes[index].inc()
            if (
                self._rebuild_threshold is not None
                and shard.staleness >= self._rebuild_threshold
            ):
                self._rebuild_locked(index)
        return index

    def _full_row(self, index: int, row: Mapping[str, float]) -> dict[str, float]:
        """Validate and normalize a row to the shard table's full schema.

        Rebuilds materialize the shard from its base table plus the deltas,
        so every update must carry every column of the shard's schema.
        """
        columns = self._base_tables[index].column_names
        missing = [column for column in columns if column not in row]
        if missing:
            raise KeyError(
                f"row is missing columns {missing} required by shard {index}'s schema"
            )
        return {column: float(row[column]) for column in columns}

    # ------------------------------------------------------------------
    # Per-shard rebuilds
    # ------------------------------------------------------------------
    def rebuild(self, index: int) -> None:
        """Re-optimize one shard from its current data (other shards untouched)."""
        with self._locks[index]:
            self._rebuild_locked(index)

    def _rebuild_locked(self, index: int) -> None:
        rebuild_start = time.perf_counter()
        shard = self._sharded.shards[index]
        snapshot = self._materialize(index)
        if snapshot.n_rows != shard.population_size:
            raise RuntimeError(
                f"shard {index}'s delta log materializes {snapshot.n_rows} rows but "
                f"the live shard holds {shard.population_size}: updates were applied "
                "outside this router (route every insert/delete through the router "
                "so rebuilds cannot lose them)"
            )
        replacement = DynamicPASS(
            snapshot,
            shard.value_column,
            shard.predicate_columns,
            config=shard.config,
            extra_sample_columns=shard.extra_sample_columns,
        )
        # Atomic swap: readers see the old shard until this assignment and
        # the fresh one after; no read on any shard ever waits for the build.
        self._sharded.replace_shard(index, replacement)
        for listener in self._swap_listeners:
            listener(index, replacement)
        self._base_tables[index] = snapshot
        self._inserted[index].clear()
        self._deleted[index].clear()
        self._rebuild_counts[index] += 1
        self._m_rebuilds[index].inc()
        self._m_rebuild_seconds.observe(time.perf_counter() - rebuild_start)

    def _materialize(self, index: int) -> Table:
        """The shard's current data: base table plus inserts minus deletes."""
        base = self._base_tables[index]
        columns = base.column_names
        arrays = {column: base.column(column).astype(float) for column in columns}
        inserted = self._inserted[index]
        if inserted:
            for column in columns:
                appended = np.array(
                    [record[column] for record in inserted], dtype=float
                )
                arrays[column] = np.concatenate([arrays[column], appended])
        keep = np.ones(next(iter(arrays.values())).shape[0], dtype=bool)
        for record in self._deleted[index]:
            match = keep.copy()
            for column in columns:
                match &= arrays[column] == record[column]
            hits = np.flatnonzero(match)
            if hits.shape[0] == 0:
                raise ValueError(
                    f"deleted row {record!r} not found in shard {index}'s data"
                )
            keep[hits[0]] = False
        return Table(
            {column: values[keep] for column, values in arrays.items()},
            name=base.name,
        )

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    def stats(self) -> list[ShardUpdateStats]:
        """Per-shard write-path telemetry, in shard order."""
        snapshots = []
        for index in range(self._sharded.n_shards):
            shard = self._sharded.shards[index]
            snapshots.append(
                ShardUpdateStats(
                    inserts=self._insert_counts[index],
                    deletes=self._delete_counts[index],
                    rebuilds=self._rebuild_counts[index],
                    staleness=(
                        shard.staleness if isinstance(shard, DynamicPASS) else 0.0
                    ),
                    population=shard.population_size,
                    sketch_staleness=(
                        shard.sketch_staleness
                        if isinstance(shard, DynamicPASS)
                        else 0.0
                    ),
                    extrema_staleness=(
                        shard.extrema_staleness
                        if isinstance(shard, DynamicPASS)
                        else 0.0
                    ),
                )
            )
        return snapshots
