"""Distributed layer: sharding, parallel multi-core builds, scatter-gather.

This subsystem makes PASS horizontally scalable:

* :class:`ShardPlanner` splits a :class:`~repro.data.table.Table` into
  range- or hash-sharded chunks on a chosen shard column;
* :class:`ParallelBuilder` (and the :func:`build_sharded_pass` convenience)
  builds the per-shard synopses concurrently across CPU cores, shipping
  picklable build specs to workers and reassembling their results through
  the exact ``to_arrays`` / ``from_arrays`` paths;
* :class:`ShardedSynopsis` answers aggregate queries by scatter-gather —
  prune shards whose key range cannot match, query the survivors through
  the vectorized batch path, and merge the per-shard estimates, variances,
  and deterministic bounds into a single :class:`~repro.result.AQPResult`
  (the mergeability of PASS's partition statistics is what makes the merge
  exact for the tree components);
* :class:`StreamingShardRouter` directs inserts / deletes to the owning
  shard's :class:`~repro.core.updates.DynamicPASS`, tracks per-shard
  staleness, and re-optimizes drifted shards without pausing reads on the
  others.

Sharded synopses register in a :class:`~repro.serving.catalog.SynopsisCatalog`
and serve through a :class:`~repro.serving.engine.ServingEngine` like any
other synopsis, and persist through :mod:`repro.serving.persistence`.
"""

from repro.distributed.parallel import (
    EXECUTORS,
    ParallelBuilder,
    ShardBuildSpec,
    build_sharded_pass,
)
from repro.distributed.planner import (
    STRATEGIES,
    ShardPlan,
    ShardPlanner,
    ShardRouting,
    hash_assign,
)
from repro.distributed.router import ShardUpdateStats, StreamingShardRouter
from repro.distributed.sharded import ShardedSynopsis

__all__ = [
    "ShardPlan",
    "ShardPlanner",
    "ShardRouting",
    "STRATEGIES",
    "hash_assign",
    "ShardBuildSpec",
    "ParallelBuilder",
    "build_sharded_pass",
    "EXECUTORS",
    "ShardedSynopsis",
    "StreamingShardRouter",
    "ShardUpdateStats",
]
