"""Splitting a table into shards on a chosen shard column.

The distributed layer scales PASS horizontally by partitioning the dataset
into disjoint *shards*, building one synopsis per shard, and answering
queries by scatter-gather over the shards.  Two sharding strategies are
supported:

* **range** — equal-depth key ranges on the shard column, the analogue of the
  1-D equal-depth partitioning the synopses themselves use.  Range shards own
  a contiguous slice of the key space, so a query whose predicate constrains
  the shard column can *prune* the shards whose range cannot overlap it —
  scatter-gather then touches only the surviving shards.
* **hash** — rows are assigned by a deterministic hash of the shard-column
  value.  Hash shards balance load under skewed key distributions but own no
  contiguous range, so range pruning is impossible (point predicates on the
  shard column still route to a single shard).

Range shards jointly cover the whole real line (the first extends to ``-inf``
and the last to ``+inf``), so every future streaming insert has an owning
shard.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.data.hashing import splitmix64
from repro.data.table import Table
from repro.query.predicate import Box, Interval

__all__ = ["ShardPlan", "ShardPlanner", "ShardRouting", "hash_assign", "STRATEGIES"]

#: Valid values of :attr:`ShardPlanner.strategy`.
STRATEGIES = ("range", "hash")

def hash_assign(values: np.ndarray, n_buckets: int) -> np.ndarray:
    """Deterministic bucket assignment for an array of key values.

    The float key's bit pattern is mixed with the shared SplitMix64
    finalizer (:func:`repro.data.hashing.splitmix64` — the same hash the
    distinct-count sketches use) so nearby keys land on unrelated buckets;
    the function is pure (no process salt), so workers, reloads, and the
    streaming router all agree on the owner of any key.
    """
    if n_buckets <= 0:
        raise ValueError("n_buckets must be positive")
    return (splitmix64(values) % np.uint64(n_buckets)).astype(np.int64)


@dataclass(frozen=True)
class ShardRouting:
    """Ownership of shard-column values — shared by plans and built synopses.

    Attributes
    ----------
    strategy:
        ``"range"`` or ``"hash"``.
    shard_column:
        The column rows are routed on.
    key_boxes:
        One :class:`~repro.query.predicate.Box` per shard; for range
        strategies the boxes are disjoint and jointly cover the real line.
    hash_modulus / hash_owners:
        For hash strategies: the hashing modulus and the owning shard index
        of *every* bucket (length ``hash_modulus``), so keys hashing to a
        bucket that was empty at plan time still have an owner — streaming
        inserts of brand-new keys never dangle.
    """

    strategy: str
    shard_column: str
    key_boxes: tuple[Box, ...]
    hash_modulus: int | None = None
    hash_owners: tuple[int, ...] = ()

    def shard_for_value(self, value: float) -> int:
        """Index of the shard owning a shard-column value."""
        value = float(value)
        if self.strategy == "hash":
            bucket = int(hash_assign(np.array([value]), self.hash_modulus)[0])
            return self.hash_owners[bucket]
        for index, box in enumerate(self.key_boxes):
            if box.interval(self.shard_column).contains_value(value):
                return index
        raise KeyError(f"no shard owns {self.shard_column}={value!r}")

    def shard_for_row(self, row: Mapping[str, float]) -> int:
        """Index of the shard owning a row (by its shard-column value)."""
        if self.shard_column not in row:
            raise KeyError(f"row must provide the shard column {self.shard_column!r}")
        return self.shard_for_value(row[self.shard_column])


@dataclass(frozen=True)
class ShardPlan:
    """The outcome of planning: per-shard key boxes and table chunks.

    Attributes
    ----------
    strategy:
        ``"range"`` or ``"hash"``.
    shard_column:
        The column rows were sharded on.
    key_boxes:
        One :class:`~repro.query.predicate.Box` per shard describing the
        region of shard-column space the shard owns.  Range shards carry
        disjoint slices jointly covering the real line; hash shards carry
        unbounded boxes (no range pruning possible).
    tables:
        One non-empty :class:`~repro.data.table.Table` chunk per shard,
        disjoint and jointly covering the input table.
    hash_modulus / hash_owners:
        For hash plans: the modulus rows were hashed with and the owning
        shard of every bucket (buckets that received no rows at plan time
        are assigned an existing shard, so future inserts always route).
        ``None`` / ``()`` for range plans.
    """

    strategy: str
    shard_column: str
    key_boxes: tuple[Box, ...]
    tables: tuple[Table, ...]
    hash_modulus: int | None = None
    hash_owners: tuple[int, ...] = ()

    @property
    def n_shards(self) -> int:
        """Number of shards in the plan."""
        return len(self.tables)

    @property
    def routing(self) -> ShardRouting:
        """The plan's value-to-shard ownership (see :class:`ShardRouting`)."""
        return ShardRouting(
            strategy=self.strategy,
            shard_column=self.shard_column,
            key_boxes=self.key_boxes,
            hash_modulus=self.hash_modulus,
            hash_owners=self.hash_owners,
        )

    def shard_for_value(self, value: float) -> int:
        """Index of the shard owning a shard-column value."""
        return self.routing.shard_for_value(value)

    def shard_for_row(self, row: Mapping[str, float]) -> int:
        """Index of the shard owning a row (by its shard-column value)."""
        return self.routing.shard_for_row(row)


class ShardPlanner:
    """Plans the split of a table into range- or hash-sharded chunks.

    Parameters
    ----------
    n_shards:
        Number of shards to produce.  Plans may return fewer when the shard
        column has too few distinct values (range) or a hash bucket receives
        no rows (hash); every returned shard is non-empty.
    strategy:
        ``"range"`` (equal-depth key ranges, prunable) or ``"hash"``
        (deterministic hash of the key, load-balancing).
    """

    def __init__(self, n_shards: int, strategy: str = "range") -> None:
        if n_shards <= 0:
            raise ValueError("n_shards must be positive")
        if strategy not in STRATEGIES:
            raise ValueError(
                f"unknown strategy {strategy!r}; choices: {', '.join(STRATEGIES)}"
            )
        self.n_shards = n_shards
        self.strategy = strategy

    def plan(self, table: Table, shard_column: str) -> ShardPlan:
        """Split ``table`` on ``shard_column`` into a :class:`ShardPlan`."""
        if table.n_rows == 0:
            raise ValueError("cannot shard an empty table")
        keys = table.column(shard_column).astype(float)
        if self.strategy == "hash":
            return self._plan_hash(table, shard_column, keys)
        return self._plan_range(table, shard_column, keys)

    def _plan_range(
        self, table: Table, shard_column: str, keys: np.ndarray
    ) -> ShardPlan:
        n_shards = min(self.n_shards, table.n_rows)
        sorted_keys = np.sort(keys)
        n = sorted_keys.shape[0]
        boundaries = sorted(
            {
                float(sorted_keys[min(n - 1, int(round(i * n / n_shards)))])
                for i in range(1, n_shards)
            }
        )
        slices: list[Interval] = []
        low = -math.inf
        for boundary in boundaries:
            slices.append(Interval(low, boundary))
            low = float(np.nextafter(boundary, math.inf))
        slices.append(Interval(low, math.inf))

        # Assemble shards from the non-empty slices, folding any empty slice's
        # key range into its successor so the shards still cover the whole
        # line (an insert with any key must have an owner).
        key_boxes: list[Box] = []
        tables: list[Table] = []
        carry_low = -math.inf
        for interval in slices:
            mask = interval.mask(keys)
            if not mask.any():
                continue
            key_boxes.append(Box({shard_column: Interval(carry_low, interval.high)}))
            tables.append(table.select(mask, name=f"{table.name}/shard{len(tables)}"))
            carry_low = float(np.nextafter(interval.high, math.inf))
        # Trailing empty slices: stretch the last shard's range to +inf.
        last = key_boxes[-1].interval(shard_column)
        if not math.isinf(last.high):
            key_boxes[-1] = Box({shard_column: Interval(last.low, math.inf)})
        return ShardPlan(
            strategy="range",
            shard_column=shard_column,
            key_boxes=tuple(key_boxes),
            tables=tuple(tables),
        )

    def _plan_hash(
        self, table: Table, shard_column: str, keys: np.ndarray
    ) -> ShardPlan:
        assignment = hash_assign(keys, self.n_shards)
        key_boxes: list[Box] = []
        tables: list[Table] = []
        owners = [-1] * self.n_shards
        for bucket in range(self.n_shards):
            mask = assignment == bucket
            if not mask.any():
                continue
            owners[bucket] = len(tables)
            key_boxes.append(Box({shard_column: Interval.unbounded()}))
            tables.append(table.select(mask, name=f"{table.name}/shard{len(tables)}"))
        # Buckets that received no rows still need an owner so future
        # streaming inserts of brand-new keys route somewhere: spread them
        # round-robin over the populated shards.
        for bucket, owner in enumerate(owners):
            if owner < 0:
                owners[bucket] = bucket % len(tables)
        return ShardPlan(
            strategy="hash",
            shard_column=shard_column,
            key_boxes=tuple(key_boxes),
            tables=tuple(tables),
            hash_modulus=self.n_shards,
            hash_owners=tuple(owners),
        )
