"""The PASS synopsis: a partition tree of aggregates plus leaf samples.

Query processing follows Section 3.3 exactly:

1. **Index lookup** — run MCF over the partition tree to split the relevant
   partitions into fully covered nodes and partially overlapped leaves.
2. **Partial aggregation** — covered nodes contribute their precomputed
   aggregates exactly.
3. **Sample estimation** — each partially overlapped leaf contributes an
   estimate from its stratified sample (Section 2.2 formulas).
4. **Results** — the exact and sampled parts add up; only the sampled part
   carries variance, giving the CLT confidence interval.
5. **Hard bounds** — the known extrema and cardinalities of the partitions
   also give deterministic bounds on the answer (Section 2.3), reported
   alongside the CLT interval.

Two executions of the same algorithm coexist (``docs/ARCHITECTURE.md``):
the default array-native path (``execution="soa"``, hosted by
:class:`repro.core.soa.FlatSynopsis`) and the per-node object path
(``execution="object"``), which remains the bit-identical oracle —
:meth:`PASSSynopsis.query_object` always runs it regardless of the switch.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

import numpy as np

from repro.aggregation.strat_agg import hard_bounds
from repro.core.tree import (
    MCFResult,
    PartitionNode,
    PartitionTree,
    boxes_from_arrays,
    boxes_to_arrays,
)
from repro.query.aggregates import SKETCH_AGGREGATES, AggregateType
from repro.query.query import AggregateQuery
from repro.result import AQPResult, LAMBDA_99
from repro.sampling.estimators import (
    EstimateWithVariance,
    ratio_estimate,
    stratum_count_contribution,
    stratum_sum_contribution,
)
from repro.core.soa import FlatSynopsis
from repro.sampling.stratified import Stratum
from repro.sketches import (
    DistinctSketch,
    DistinctSketchUnion,
    LeafSketches,
    QuantileSketch,
    QuantileSketchUnion,
)

__all__ = ["PASSSynopsis", "sketch_union_result"]


class PASSSynopsis:
    """Precomputation-Assisted Stratified Sampling synopsis.

    Parameters
    ----------
    tree:
        Partition tree whose leaves align 1:1 with ``leaf_samples``.
    leaf_samples:
        One :class:`~repro.sampling.stratified.Stratum` per tree leaf, in
        leaf-index order.
    value_column:
        The aggregation column the synopsis answers queries about.
    lam:
        Default confidence-interval multiplier.
    zero_variance_rule:
        Enable the AVG-only MCF shortcut of Section 3.4.
    with_fpc:
        Apply finite-population corrections to per-leaf estimates.
    build_seconds:
        Wall-clock construction cost recorded by the builder (reported in the
        cost tables).
    effective_partitioner:
        The partitioner the builder actually ran (which may differ from the
        configured one — 1-D optimizers fall back to ``"kd"`` on
        multi-dimensional inputs), ``"precomputed"`` when the leaf boxes were
        supplied, or ``None`` for hand-assembled synopses.
    leaf_sketches:
        Optional mergeable per-leaf sketches (:class:`LeafSketches`, aligned
        with the tree leaves) enabling QUANTILE / COUNT_DISTINCT queries;
        ``None`` for synopses built without sketch support.
    execution:
        ``"soa"`` (default) answers classic aggregates over the
        structure-of-arrays engine (:class:`repro.core.soa.FlatSynopsis`);
        ``"object"`` keeps the per-node object path.  Both produce
        bit-identical answers — the switch exists for oracle testing and
        debugging.
    """

    def __init__(
        self,
        tree: PartitionTree,
        leaf_samples: Sequence[Stratum],
        value_column: str,
        lam: float = LAMBDA_99,
        zero_variance_rule: bool = True,
        with_fpc: bool = False,
        build_seconds: float = 0.0,
        effective_partitioner: str | None = None,
        leaf_sketches: Sequence[LeafSketches] | None = None,
        execution: str = "soa",
    ) -> None:
        if tree.n_leaves != len(leaf_samples):
            raise ValueError(
                f"tree has {tree.n_leaves} leaves "
                f"but {len(leaf_samples)} samples were given"
            )
        if leaf_sketches is not None and len(leaf_sketches) != tree.n_leaves:
            raise ValueError(
                f"tree has {tree.n_leaves} leaves "
                f"but {len(leaf_sketches)} leaf sketches were given"
            )
        if execution not in ("soa", "object"):
            raise ValueError(
                f"execution must be 'soa' or 'object', got {execution!r}"
            )
        self._tree = tree
        self._leaf_samples = list(leaf_samples)
        self._leaf_sketches = None if leaf_sketches is None else list(leaf_sketches)
        self._value_column = value_column
        self._lam = lam
        self._zero_variance_rule = zero_variance_rule
        self._with_fpc = with_fpc
        self.build_seconds = build_seconds
        self.effective_partitioner = effective_partitioner
        self._execution = execution
        self._flat: FlatSynopsis | None = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def tree(self) -> PartitionTree:
        """The partition tree of precomputed aggregates."""
        return self._tree

    @property
    def zero_variance_rule(self) -> bool:
        """Whether AVG lookups apply the zero-variance descent rule (3.4)."""
        return self._zero_variance_rule

    @property
    def execution(self) -> str:
        """Active execution engine: ``"soa"`` (array-native) or ``"object"``."""
        return self._execution

    @execution.setter
    def execution(self, value: str) -> None:
        """Switch engines; the flat arrays stay warm across toggles."""
        if value not in ("soa", "object"):
            raise ValueError(f"execution must be 'soa' or 'object', got {value!r}")
        self._execution = value

    @property
    def flat(self) -> FlatSynopsis:
        """The lazily-built structure-of-arrays engine over this synopsis.

        Built on first access and kept in sync by the mutation hooks
        (:meth:`notify_stats_mutated`, :meth:`replace_leaf_sample`); drop it
        with :meth:`invalidate_flat` after out-of-band tree surgery.
        """
        flat = self._flat
        if flat is None:
            flat = FlatSynopsis(self)
            self._flat = flat
        return flat

    def invalidate_flat(self) -> None:
        """Discard the flat engine (rebuilt from scratch on next access)."""
        self._flat = None

    def notify_stats_mutated(self, nodes: Sequence[PartitionNode]) -> None:
        """Mirror in-place node-statistics mutations into the flat engine.

        The dynamic update path calls this after rewriting the statistics
        along a root-to-leaf path; a no-op until the flat engine exists.
        """
        if self._flat is not None:
            self._flat.update_node_stats(nodes)

    @property
    def leaf_samples(self) -> list[Stratum]:
        """The stratified samples attached to the leaves (leaf-index order)."""
        return list(self._leaf_samples)

    @property
    def leaf_sketches(self) -> list[LeafSketches] | None:
        """The per-leaf sketches (leaf-index order), or None when absent."""
        return None if self._leaf_sketches is None else list(self._leaf_sketches)

    def leaf_sketches_at(self, leaf_index: int) -> LeafSketches:
        """The sketches of one leaf, without copying the list (hot path)."""
        if self._leaf_sketches is None:
            raise ValueError("synopsis was built without sketches")
        return self._leaf_sketches[leaf_index]

    @property
    def has_sketches(self) -> bool:
        """True when the synopsis can answer QUANTILE / COUNT_DISTINCT."""
        return self._leaf_sketches is not None

    @property
    def value_column(self) -> str:
        """The aggregation column."""
        return self._value_column

    @property
    def lam(self) -> float:
        """Default confidence-interval multiplier."""
        return self._lam

    @property
    def with_fpc(self) -> bool:
        """Whether per-leaf estimates apply finite-population corrections."""
        return self._with_fpc

    @property
    def n_partitions(self) -> int:
        """Number of leaf partitions."""
        return self._tree.n_leaves

    @property
    def population_size(self) -> int:
        """Number of tuples summarized by the synopsis.

        Read from the root statistics so it stays correct while
        :class:`~repro.core.updates.DynamicPASS` maintains the tree in place.
        """
        return self._tree.root.stats.count

    @property
    def sample_size(self) -> int:
        """Total number of stored sample tuples across all leaves."""
        return sum(stratum.sample_size for stratum in self._leaf_samples)

    def storage_bytes(self) -> int:
        """Approximate footprint: tree aggregates, leaf samples, and sketches."""
        samples = sum(stratum.storage_bytes() for stratum in self._leaf_samples)
        sketches = sum(
            sketches.storage_bytes() for sketches in self._leaf_sketches or ()
        )
        return self._tree.storage_bytes() + samples + sketches

    def replace_leaf_sample(self, leaf_index: int, stratum: Stratum) -> None:
        """Swap the stratified sample of one leaf (dynamic-update support)."""
        if not 0 <= leaf_index < len(self._leaf_samples):
            raise IndexError(f"leaf index {leaf_index} out of range")
        self._leaf_samples[leaf_index] = stratum
        if self._flat is not None:
            self._flat.replace_leaf_sample(leaf_index, stratum)

    # ------------------------------------------------------------------
    # Persistence (array export / import)
    # ------------------------------------------------------------------
    def to_arrays(self) -> tuple[dict[str, np.ndarray], dict]:
        """Export the synopsis as flat numpy arrays plus a JSON-safe header.

        The arrays carry the partition tree, the stratum boxes/sizes, and the
        per-leaf sample columns (concatenated, with an offsets array); the
        header carries the scalar configuration.  The round trip through
        :meth:`from_arrays` is exact: a reloaded synopsis returns bit-identical
        estimates.
        """
        arrays: dict[str, np.ndarray] = {}
        for key, value in self._tree.to_arrays().items():
            arrays[f"tree/{key}"] = value

        strata = self._leaf_samples
        sample_columns = list(strata[0].sample_columns) if strata else []
        for stratum in strata:
            if list(stratum.sample_columns) != sample_columns:
                raise ValueError("leaf samples must share the same column set")
        lengths = [stratum.sample_size for stratum in strata]
        arrays["strata/sizes"] = np.array([s.size for s in strata], dtype=np.int64)
        arrays["strata/offsets"] = np.concatenate(
            [[0], np.cumsum(lengths)]
        ).astype(np.int64)
        for key, value in boxes_to_arrays([s.box for s in strata]).items():
            arrays[f"strata/box_{key}"] = value
        for column in sample_columns:
            parts = [np.asarray(s.sample_columns[column], dtype=float) for s in strata]
            arrays[f"samples/{column}"] = (
                np.concatenate(parts) if parts else np.zeros(0, dtype=float)
            )

        if self._leaf_sketches is not None:
            for i, sketches in enumerate(self._leaf_sketches):
                for key, value in sketches.to_arrays().items():
                    arrays[f"sketches/{i}/{key}"] = value

        header = {
            "format": 1,
            "value_column": self._value_column,
            "lam": self._lam,
            "zero_variance_rule": self._zero_variance_rule,
            "with_fpc": self._with_fpc,
            "build_seconds": self.build_seconds,
            "effective_partitioner": self.effective_partitioner,
            "sample_columns": sample_columns,
            "with_sketches": self._leaf_sketches is not None,
            "execution": self._execution,
        }
        return arrays, header

    @classmethod
    def from_arrays(cls, arrays: dict[str, np.ndarray], header: dict) -> "PASSSynopsis":
        """Rebuild a synopsis exported with :meth:`to_arrays`."""
        tree = PartitionTree.from_arrays(
            {
                key[len("tree/") :]: value
                for key, value in arrays.items()
                if key.startswith("tree/")
            }
        )
        boxes = boxes_from_arrays(
            {
                key[len("strata/box_") :]: value
                for key, value in arrays.items()
                if key.startswith("strata/box_")
            }
        )
        sizes = np.asarray(arrays["strata/sizes"], dtype=np.int64)
        offsets = np.asarray(arrays["strata/offsets"], dtype=np.int64)
        sample_columns = list(header["sample_columns"])
        strata = []
        for i, box in enumerate(boxes):
            start, stop = int(offsets[i]), int(offsets[i + 1])
            strata.append(
                Stratum(
                    box=box,
                    size=int(sizes[i]),
                    sample_columns={
                        column: np.asarray(
                            arrays[f"samples/{column}"][start:stop], dtype=float
                        )
                        for column in sample_columns
                    },
                )
            )
        leaf_sketches = None
        if header.get("with_sketches"):
            # One pass over the archive: bucket "sketches/<i>/<rest>" keys by
            # leaf index instead of rescanning all keys once per leaf.
            buckets: dict[int, dict[str, np.ndarray]] = {}
            for key, value in arrays.items():
                if not key.startswith("sketches/"):
                    continue
                index, _, rest = key[len("sketches/") :].partition("/")
                buckets.setdefault(int(index), {})[rest] = value
            leaf_sketches = [
                LeafSketches.from_arrays(buckets[i]) for i in range(tree.n_leaves)
            ]
        return cls(
            tree=tree,
            leaf_samples=strata,
            value_column=str(header["value_column"]),
            lam=float(header["lam"]),
            zero_variance_rule=bool(header["zero_variance_rule"]),
            with_fpc=bool(header["with_fpc"]),
            build_seconds=float(header["build_seconds"]),
            effective_partitioner=header.get("effective_partitioner"),
            leaf_sketches=leaf_sketches,
            # Archives written before the array-native engine default to it.
            execution=str(header.get("execution", "soa")),
        )

    # ------------------------------------------------------------------
    # Query processing (Section 3.3)
    # ------------------------------------------------------------------
    def lookup(self, query: AggregateQuery) -> MCFResult:
        """Run the MCF index lookup for a query."""
        use_zero_variance = (
            self._zero_variance_rule and query.agg == AggregateType.AVG
        )
        return self._tree.minimal_coverage_frontier(
            query.predicate, zero_variance_rule=use_zero_variance
        )

    def query(
        self,
        query: AggregateQuery,
        lam: float | None = None,
        match_masks: Mapping[int, np.ndarray] | None = None,
        frontier: MCFResult | None = None,
    ) -> AQPResult:
        """Answer an aggregate query from the synopsis.

        Parameters
        ----------
        query / lam:
            The query and an optional confidence-multiplier override.
        match_masks:
            Optional precomputed sample match masks keyed by leaf index, as
            produced by a batch executor that evaluated the predicate against
            many queries at once (see
            :meth:`repro.serving.engine.ServingEngine.execute_batch`).  When a
            leaf's mask is present it is used verbatim instead of re-running
            the predicate over the leaf's sample, so results are identical by
            construction.
        frontier:
            Optional precomputed MCF result for this query (must come from
            :meth:`lookup` on this synopsis); skips the index lookup.
        """
        if (
            self._execution == "soa"
            and frontier is None
            and match_masks is None
            and query.agg not in SKETCH_AGGREGATES
        ):
            return self.flat.query(query, lam=lam)
        return self.query_object(
            query, lam=lam, match_masks=match_masks, frontier=frontier
        )

    def query_object(
        self,
        query: AggregateQuery,
        lam: float | None = None,
        match_masks: Mapping[int, np.ndarray] | None = None,
        frontier: MCFResult | None = None,
    ) -> AQPResult:
        """Answer a query over the per-node object path (the oracle).

        Same parameters and semantics as :meth:`query`; always traverses
        the Python object graph regardless of the ``execution`` switch.
        The array path is property-tested bit-identical against this
        implementation.
        """
        if query.value_column != self._value_column:
            raise ValueError(
                f"synopsis was built for column {self._value_column!r}, "
                f"query aggregates {query.value_column!r}"
            )
        lam = self._lam if lam is None else lam
        if frontier is None:
            frontier = self.lookup(query)
        if query.agg in SKETCH_AGGREGATES:
            union = self.sketch_union(query, frontier=frontier, match_masks=match_masks)
            return sketch_union_result(query, union, self.population_size)
        covered_stats = [node.stats for node in frontier.covered]
        partial_nodes = list(frontier.partial)
        partial_stats = [node.stats for node in partial_nodes]
        bounds = hard_bounds(query.agg, covered_stats, partial_stats)

        processed = sum(
            self._leaf_samples[node.leaf_index].sample_size for node in partial_nodes
        )
        partial_population = sum(node.size for node in partial_nodes)
        skipped = self.population_size - partial_population

        agg = query.agg
        if agg in (AggregateType.MIN, AggregateType.MAX):
            return self._extremum_answer(
                agg, query, frontier, bounds, processed, skipped, match_masks
            )
        if agg == AggregateType.AVG:
            estimate = self._avg_estimate(query, frontier, match_masks)
        else:
            estimate = self._sum_count_estimate(agg, query, frontier, match_masks)

        exact = frontier.is_exact
        if exact:
            half_width = 0.0
            variance = 0.0
        elif math.isnan(estimate.variance):
            half_width = float("nan")
            variance = float("nan")
        else:
            variance = estimate.variance
            half_width = lam * math.sqrt(max(variance, 0.0))
        return AQPResult(
            estimate=estimate.estimate,
            ci_half_width=half_width,
            variance=variance,
            hard_lower=bounds.lower,
            hard_upper=bounds.upper,
            tuples_processed=processed,
            tuples_skipped=skipped,
            exact=exact,
        )

    def skip_rate(self, query: AggregateQuery) -> float:
        """Fraction of dataset tuples whose contribution never touches samples."""
        if self.population_size == 0:
            return 1.0
        frontier = self.lookup(query)
        partial_population = sum(node.size for node in frontier.partial)
        return 1.0 - partial_population / self.population_size

    # ------------------------------------------------------------------
    # Sketch aggregates (QUANTILE / COUNT_DISTINCT)
    # ------------------------------------------------------------------
    def sketch_union(
        self,
        query: AggregateQuery,
        frontier: MCFResult | None = None,
        match_masks: Mapping[int, np.ndarray] | None = None,
    ) -> QuantileSketchUnion | DistinctSketchUnion:
        """Reduce a sketch-aggregate query to its mergeable frontier union.

        Fully covered frontier nodes contribute the pre-built sketches of
        their leaves (an exact summary of the region, up to sketch error);
        partially overlapped leaves contribute through their stratified
        sample — the matched sample values re-weighted to the leaf's
        estimated matching population for QUANTILE, and a lower (matched
        samples) / upper (whole leaf) sketch pair for COUNT_DISTINCT — plus
        the leaf's population as *boundary weight* widening the certified
        bounds.

        The union is the scatter-gather hand-off: per-shard unions merge
        with :meth:`QuantileSketchUnion.merge` /
        :meth:`DistinctSketchUnion.merge`, and
        :func:`sketch_union_result` turns any union into an
        :class:`~repro.result.AQPResult`, so sharded and single-synopsis
        answers share one code path.
        """
        if query.agg not in SKETCH_AGGREGATES:
            raise ValueError(
                f"{query.agg.value} is not a sketch aggregate; use query()"
            )
        if query.value_column != self._value_column:
            raise ValueError(
                f"synopsis was built for column {self._value_column!r}, "
                f"query aggregates {query.value_column!r}"
            )
        if self._leaf_sketches is None:
            raise ValueError(
                "synopsis was built without sketches and cannot answer "
                f"{query.agg.value} queries; rebuild with "
                "PASSConfig(with_sketches=True)"
            )
        if frontier is None:
            frontier = self.lookup(query)
        covered_leaves = [
            node
            for covered in frontier.covered
            for node in covered.iter_subtree()
            if node.is_leaf
        ]
        if query.agg == AggregateType.QUANTILE:
            return self._quantile_union(query, frontier, covered_leaves, match_masks)
        return self._distinct_union(query, frontier, covered_leaves, match_masks)

    def _quantile_union(
        self,
        query: AggregateQuery,
        frontier: MCFResult,
        covered_leaves: Sequence[PartitionNode],
        match_masks: Mapping[int, np.ndarray] | None,
    ) -> QuantileSketchUnion:
        merged = QuantileSketch(self._leaf_sketches[0].quantile.k)
        for node in covered_leaves:
            merged = merged.merge(self._leaf_sketches[node.leaf_index].quantile)
        boundary = 0
        floor, ceil = math.inf, -math.inf
        processed = 0
        for node in frontier.partial:
            if node.size == 0:
                continue
            boundary += node.size
            floor = min(floor, node.stats.min)
            ceil = max(ceil, node.stats.max)
            stratum = self._leaf_samples[node.leaf_index]
            processed += stratum.sample_size
            if stratum.sample_size == 0:
                continue
            mask = self._leaf_match_mask(node, query, match_masks)
            matched = stratum.sample_values(self._value_column)[mask]
            if matched.shape[0] == 0:
                continue
            weight = int(round(node.size * matched.shape[0] / stratum.sample_size))
            if weight > 0:
                merged.update_weighted(matched, weight)
        return QuantileSketchUnion(
            sketch=merged,
            boundary_weight=boundary,
            value_floor=floor,
            value_ceil=ceil,
            processed=processed,
        )

    def _distinct_union(
        self,
        query: AggregateQuery,
        frontier: MCFResult,
        covered_leaves: Sequence[PartitionNode],
        match_masks: Mapping[int, np.ndarray] | None,
    ) -> DistinctSketchUnion:
        covered = DistinctSketch(self._leaf_sketches[0].distinct.k)
        for node in covered_leaves:
            covered = covered.merge(self._leaf_sketches[node.leaf_index].distinct)
        lower = covered
        upper = covered
        boundary = 0
        processed = 0
        for node in frontier.partial:
            if node.size == 0:
                continue
            boundary += node.size
            upper = upper.merge(self._leaf_sketches[node.leaf_index].distinct)
            stratum = self._leaf_samples[node.leaf_index]
            processed += stratum.sample_size
            if stratum.sample_size == 0:
                continue
            mask = self._leaf_match_mask(node, query, match_masks)
            matched = stratum.sample_values(self._value_column)[mask]
            if matched.shape[0]:
                sample_sketch = DistinctSketch(lower.k)
                sample_sketch.update_array(matched)
                lower = lower.merge(sample_sketch)
        return DistinctSketchUnion(
            lower=lower,
            upper=upper,
            boundary_weight=boundary,
            processed=processed,
        )

    # ------------------------------------------------------------------
    # Estimation pieces
    # ------------------------------------------------------------------
    def _covered_sum_count(
        self, agg: AggregateType, covered: Sequence[PartitionNode]
    ) -> float:
        if agg == AggregateType.SUM:
            return sum(node.stats.sum for node in covered)
        return float(sum(node.stats.count for node in covered))

    def _leaf_match_mask(
        self,
        node: PartitionNode,
        query: AggregateQuery,
        match_masks: Mapping[int, np.ndarray] | None,
    ) -> np.ndarray:
        if match_masks is not None and node.leaf_index in match_masks:
            return match_masks[node.leaf_index]
        return self._leaf_samples[node.leaf_index].match_mask(query)

    def _partial_contribution(
        self,
        agg: AggregateType,
        query: AggregateQuery,
        node: PartitionNode,
        match_masks: Mapping[int, np.ndarray] | None = None,
    ) -> EstimateWithVariance:
        if node.size == 0:
            # An empty partition (possible for k-d leaves over sparse regions)
            # contributes exactly nothing.
            return EstimateWithVariance(0.0, 0.0)
        stratum = self._leaf_samples[node.leaf_index]
        match_mask = self._leaf_match_mask(node, query, match_masks)
        if agg == AggregateType.SUM:
            return stratum_sum_contribution(
                stratum.sample_values(self._value_column),
                match_mask,
                node.size,
                with_fpc=self._with_fpc,
            )
        return stratum_count_contribution(
            match_mask, node.size, with_fpc=self._with_fpc
        )

    def _sum_count_estimate(
        self,
        agg: AggregateType,
        query: AggregateQuery,
        frontier: MCFResult,
        match_masks: Mapping[int, np.ndarray] | None = None,
    ) -> EstimateWithVariance:
        exact_part = self._covered_sum_count(agg, frontier.covered)
        total = EstimateWithVariance(exact_part, 0.0)
        for node in frontier.partial:
            contribution = self._partial_contribution(agg, query, node, match_masks)
            if math.isnan(contribution.variance):
                # A partial leaf without samples: its contribution is unknown;
                # fall back to half of its hard-bound width as a conservative
                # point estimate with unknown variance.
                stats = node.stats
                midpoint = 0.5 * (
                    stats.sum if agg == AggregateType.SUM else stats.count
                )
                total = EstimateWithVariance(total.estimate + midpoint, float("nan"))
                continue
            total = total + contribution
        return total

    def _avg_estimate(
        self,
        query: AggregateQuery,
        frontier: MCFResult,
        match_masks: Mapping[int, np.ndarray] | None = None,
    ) -> EstimateWithVariance:
        """AVG as the ratio of the SUM and COUNT estimates (delta method)."""
        numerator = self._sum_count_estimate(
            AggregateType.SUM, query, frontier, match_masks
        )
        denominator = self._sum_count_estimate(
            AggregateType.COUNT, query, frontier, match_masks
        )
        if denominator.estimate == 0:
            return EstimateWithVariance(float("nan"), float("nan"))
        if frontier.is_exact:
            return EstimateWithVariance(numerator.estimate / denominator.estimate, 0.0)
        return ratio_estimate(numerator, denominator)

    def _extremum_answer(
        self,
        agg: AggregateType,
        query: AggregateQuery,
        frontier: MCFResult,
        bounds,
        processed: int,
        skipped: int,
        match_masks: Mapping[int, np.ndarray] | None = None,
    ) -> AQPResult:
        """MIN / MAX: exact over covered nodes, sample-refined over partial leaves."""
        candidates: list[float] = []
        for node in frontier.covered:
            value = node.stats.max if agg == AggregateType.MAX else node.stats.min
            if not math.isinf(value):
                candidates.append(value)
        for node in frontier.partial:
            stratum = self._leaf_samples[node.leaf_index]
            match_mask = self._leaf_match_mask(node, query, match_masks)
            matched = stratum.sample_values(self._value_column)[match_mask]
            if matched.shape[0]:
                candidates.append(
                    float(matched.max() if agg == AggregateType.MAX else matched.min())
                )
        if candidates:
            estimate = max(candidates) if agg == AggregateType.MAX else min(candidates)
        else:
            estimate = float("nan")
        exact = frontier.is_exact
        return AQPResult(
            estimate=estimate,
            ci_half_width=0.0 if exact else float("nan"),
            variance=0.0 if exact else float("nan"),
            hard_lower=bounds.lower,
            hard_upper=bounds.upper,
            tuples_processed=processed,
            tuples_skipped=skipped,
            exact=exact,
        )


def sketch_union_result(
    query: AggregateQuery,
    union: "QuantileSketchUnion | DistinctSketchUnion",
    population: int,
) -> AQPResult:
    """Turn a (possibly merged) sketch union into an :class:`AQPResult`.

    The same assembly serves the single-synopsis path and the distributed
    scatter-gather path (which merges per-shard unions first), so sharded
    answers follow the exact same sketch algebra as single-synopsis ones.

    * **QUANTILE** — the estimate is the merged sketch's value at rank
      ``ceil(q * n)`` (the nearest-rank / ``percentile_disc`` convention).
      The hard bounds are *certified*: the true quantile's rank differs
      from the target by at most the sketch's accumulated compaction error
      plus twice the boundary weight (misattributed boundary mass plus the
      shifted rank target), plus one rank of slack so the bounds also
      contain linearly *interpolated* quantiles (``percentile_cont`` /
      ``numpy.quantile``, which lie between the order statistics at
      ``target - 1`` and ``target + 1``).  The values at that widened rank
      window — stretched to the partial leaves' known extrema when it
      reaches past the represented range — therefore always contain the
      true answer under either convention.
    * **COUNT_DISTINCT** — the estimate is the midpoint of the lower
      (covered + matched samples) and upper (covered + whole partial leaves)
      sketch estimates; the hard bounds stretch each envelope end by the
      KMV error margin (exactly 0 while the sketches are unsaturated, a
      >99.7%-probability margin otherwise).

    No CLT interval exists for sketch aggregates: ``ci_half_width`` and
    ``variance`` are 0 for exact answers and NaN otherwise.
    """
    skipped = population - union.boundary_weight
    exact = union.is_exact
    if query.agg == AggregateType.QUANTILE:
        sketch = union.sketch
        n = sketch.n
        if n == 0:
            # Nothing represented: either a provably empty region (exact
            # NULL) or only unsampled boundary mass (bounded by partial
            # extrema when they exist).
            empty = union.boundary_weight == 0
            return AQPResult(
                estimate=float("nan"),
                ci_half_width=0.0 if empty else float("nan"),
                variance=0.0 if empty else float("nan"),
                hard_lower=float("nan") if empty else union.value_floor,
                hard_upper=float("nan") if empty else union.value_ceil,
                tuples_processed=union.processed,
                tuples_skipped=skipped,
                exact=empty,
            )
        q = query.quantile if query.quantile is not None else 0.5
        estimate = sketch.quantile(q)
        # +1 rank of slack: an interpolated (percentile_cont-style) true
        # quantile lies between the order statistics adjacent to the
        # nearest-rank target, so the certified window must straddle them.
        bound = union.rank_error_bound() + 1
        target = max(1, min(math.ceil(q * n), n))
        if target - bound >= 1:
            hard_lower = sketch.value_at_rank(target - bound)
        else:
            hard_lower = min(sketch.min, union.value_floor)
        if target + bound <= n:
            hard_upper = sketch.value_at_rank(target + bound)
        else:
            hard_upper = max(sketch.max, union.value_ceil)
        return AQPResult(
            estimate=estimate,
            ci_half_width=0.0 if exact else float("nan"),
            variance=0.0 if exact else float("nan"),
            hard_lower=hard_lower,
            hard_upper=hard_upper,
            tuples_processed=union.processed,
            tuples_skipped=skipped,
            exact=exact,
        )

    lower_estimate = union.lower.estimate()
    upper_estimate = union.upper.estimate()
    estimate = upper_estimate if exact else 0.5 * (lower_estimate + upper_estimate)
    hard_lower = max(0.0, lower_estimate * (1.0 - union.lower.error_fraction()))
    hard_upper = upper_estimate * (1.0 + union.upper.error_fraction())
    return AQPResult(
        estimate=estimate,
        ci_half_width=0.0 if exact else float("nan"),
        variance=0.0 if exact else float("nan"),
        hard_lower=hard_lower,
        hard_upper=hard_upper,
        tuples_processed=union.processed,
        tuples_skipped=skipped,
        exact=exact,
    )
