"""The paper's primary contribution: the PASS synopsis and its builder."""

from repro.core.builder import build_leaf_boxes, build_leaf_samples, build_pass
from repro.core.config import PARTITIONER_CHOICES, PASSConfig
from repro.core.pass_synopsis import PASSSynopsis
from repro.core.tree import MCFResult, PartitionNode, PartitionTree
from repro.core.updates import DynamicPASS

__all__ = [
    "build_leaf_boxes",
    "build_leaf_samples",
    "build_pass",
    "PARTITIONER_CHOICES",
    "PASSConfig",
    "PASSSynopsis",
    "MCFResult",
    "PartitionNode",
    "PartitionTree",
    "DynamicPASS",
]
