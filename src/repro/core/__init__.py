"""The paper's primary contribution: the PASS synopsis and its builder."""

from repro.core.batching import (
    batch_leaf_masks,
    batch_query,
    frontier_count,
    grouped_query,
)
from repro.core.builder import (
    PartitionerFallbackWarning,
    build_leaf_boxes,
    build_leaf_samples,
    build_pass,
    resolve_partitioner,
)
from repro.core.config import PARTITIONER_CHOICES, PASSConfig
from repro.core.pass_synopsis import PASSSynopsis
from repro.core.soa import FlatFrontier, FlatSamples, FlatSynopsis
from repro.core.tree import MCFResult, PartitionNode, PartitionTree
from repro.core.updates import DynamicPASS

__all__ = [
    "batch_leaf_masks",
    "batch_query",
    "frontier_count",
    "grouped_query",
    "build_leaf_boxes",
    "build_leaf_samples",
    "build_pass",
    "resolve_partitioner",
    "PartitionerFallbackWarning",
    "PARTITIONER_CHOICES",
    "PASSConfig",
    "PASSSynopsis",
    "FlatFrontier",
    "FlatSamples",
    "FlatSynopsis",
    "MCFResult",
    "PartitionNode",
    "PartitionTree",
    "DynamicPASS",
]
