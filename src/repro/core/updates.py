"""Dynamic maintenance of a PASS synopsis (Section 4.5).

Insertions and deletions are handled without rebuilding the structure:

* the tuple is routed to its leaf partition by walking the tree;
* the SUM / COUNT / MIN / MAX statistics of every node on the root-to-leaf
  path are updated in O(height) time;
* the leaf's stratified sample is maintained with reservoir sampling, so it
  stays a uniform sample of the leaf's (growing) population.

After many updates the partitioning may drift away from the optimum the
builder found; :meth:`DynamicPASS.updates_since_build` and the normalized
:attr:`DynamicPASS.staleness` ratio let callers decide when to trigger a
re-optimization (the paper leaves the split/merge variant as future work).

Known limitation — stale MIN / MAX after deletions
--------------------------------------------------
Deleting a tuple cannot tighten the MIN / MAX statistics of the nodes on its
root-to-leaf path without rescanning the raw data, so those bounds are kept
*conservative*: they remain valid (the true extremum is always inside them)
but may become loose.  Concretely, after deleting the current minimum or
maximum of a partition, MIN / MAX query estimates and the hard bounds derived
from node statistics can be wider than a fresh build would produce.  The
first deletion that can cause this emits a :class:`StaleExtremaWarning`, and
:attr:`DynamicPASS.minmax_possibly_stale` reports the condition;
:meth:`DynamicPASS.rebuild` clears it.  SUM / COUNT / AVG statistics are
maintained exactly and are never affected.

Known limitation — sketches under deletions
-------------------------------------------
The per-leaf QUANTILE / COUNT_DISTINCT sketches absorb every *insert*
exactly (they are mergeable stream summaries), but a linear sketch cannot
un-see a value: deletions leave the sketches summarizing a slightly larger
multiset than the live data.  Instead of silently drifting, the synopsis
counts ignored deletions and reports the normalized drift as
:attr:`DynamicPASS.sketch_staleness` — the certified quantile rank bounds
and the distinct-count envelope remain *valid for the inserted multiset*,
and the answer for the live data is off by at most the deleted mass.
Serving layers use the ratio the same way as :attr:`DynamicPASS.staleness`:
to decide when a shard is due for a :meth:`DynamicPASS.rebuild`, which
reconstructs the sketches from the current data and resets the counter.
"""

from __future__ import annotations

import dataclasses
import warnings
from typing import Mapping, Sequence

import numpy as np

from repro.core.builder import build_pass
from repro.core.config import PASSConfig
from repro.core.pass_synopsis import PASSSynopsis
from repro.core.tree import PartitionNode
from repro.data.table import Table
from repro.query.query import AggregateQuery
from repro.result import AQPResult
from repro.sampling.reservoir import ReservoirSample
from repro.sampling.stratified import Stratum

__all__ = ["DynamicPASS", "StaleExtremaWarning"]


class StaleExtremaWarning(UserWarning):
    """Warns that deletions may have left MIN / MAX node statistics loose."""


class DynamicPASS:
    """A PASS synopsis that accepts streaming inserts and deletes.

    Parameters
    ----------
    table:
        Initial table the synopsis is built from.
    value_column / predicate_columns / config:
        Passed through to :func:`~repro.core.builder.build_pass`.
    reservoir_capacity:
        Per-leaf reservoir capacity; defaults to each leaf's initial sample
        size (so storage stays constant under inserts).
    extra_sample_columns:
        Additional columns retained in the samples and reservoirs (see
        :func:`~repro.core.builder.build_leaf_samples`).
    """

    def __init__(
        self,
        table: Table,
        value_column: str,
        predicate_columns: Sequence[str],
        config: PASSConfig | None = None,
        reservoir_capacity: int | None = None,
        rng: np.random.Generator | int | None = 0,
        extra_sample_columns: Sequence[str] | None = None,
    ) -> None:
        self._value_column = value_column
        self._predicate_columns = list(predicate_columns)
        self._config = config or PASSConfig()
        self._extra_sample_columns = list(extra_sample_columns or [])
        self._synopsis = build_pass(
            table,
            value_column,
            predicate_columns,
            self._config,
            extra_sample_columns=self._extra_sample_columns,
        )
        generator = (
            rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        )
        self._sample_columns = (
            list(self._synopsis.leaf_samples[0].sample_columns.keys())
            if self._synopsis.leaf_samples
            else [value_column]
        )

        # Seed one reservoir per leaf from the builder's stratified sample so
        # the initial state matches the static synopsis exactly.
        self._reservoirs: list[ReservoirSample] = []
        for stratum in self._synopsis.leaf_samples:
            capacity = reservoir_capacity or max(1, stratum.sample_size)
            reservoir = ReservoirSample(capacity, rng=generator)
            for row_index in range(stratum.sample_size):
                row = {
                    column: float(values[row_index])
                    for column, values in stratum.sample_columns.items()
                }
                reservoir.offer(row)
            # The reservoir has now "seen" only its own sample; record the
            # true leaf population so acceptance probabilities stay unbiased.
            reservoir.rebase_seen(max(stratum.size, len(reservoir)))
            self._reservoirs.append(reservoir)
        self._updates_since_build = 0
        self._build_population = self.population_size
        self._minmax_possibly_stale = False
        self._sketch_stale_deletes = 0
        self._extrema_stale_deletes = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def synopsis(self) -> PASSSynopsis:
        """The underlying PASS synopsis (stats updated in place)."""
        return self._synopsis

    @property
    def value_column(self) -> str:
        """The aggregation column the synopsis answers queries about."""
        return self._value_column

    @property
    def predicate_columns(self) -> list[str]:
        """The predicate columns updates are routed on."""
        return list(self._predicate_columns)

    @property
    def config(self) -> PASSConfig:
        """The build configuration (reused by per-shard rebuilds)."""
        return self._config

    @property
    def extra_sample_columns(self) -> list[str]:
        """Extra columns retained in the samples beyond value / predicate."""
        return list(self._extra_sample_columns)

    @property
    def updates_since_build(self) -> int:
        """Number of inserts and deletes applied since the last (re)build."""
        return self._updates_since_build

    @property
    def population_size(self) -> int:
        """Current number of tuples summarized."""
        return self._synopsis.tree.root.stats.count

    @property
    def staleness(self) -> float:
        """Updates applied since the last build, normalized by the build size.

        ``updates_since_build / max(1, build population)`` — a rough drift
        measure: 0.0 right after a (re)build, 1.0 once as many updates have
        been applied as there were tuples at build time.  Serving layers use
        it to decide when a synopsis is due for re-optimization.
        """
        return self._updates_since_build / max(1, self._build_population)

    @property
    def minmax_possibly_stale(self) -> bool:
        """True when deletions may have left MIN / MAX node stats loose."""
        return self._minmax_possibly_stale

    @property
    def sketch_staleness(self) -> float:
        """Deletions the sketches could not absorb, normalized by build size.

        QUANTILE / COUNT_DISTINCT sketches absorb inserts exactly but cannot
        remove deleted values; this ratio (``ignored deletes / max(1, build
        population)``) bounds how far sketch answers can drift from the live
        data.  0.0 right after a (re)build and while the workload is
        insert-only.
        """
        return self._sketch_stale_deletes / max(1, self._build_population)

    @property
    def extrema_stale_deletes(self) -> int:
        """Deletions that hit a partition extremum since the last (re)build."""
        return self._extrema_stale_deletes

    @property
    def extrema_staleness(self) -> float:
        """Extremum-hitting deletions, normalized by the build population.

        The gauge form of :class:`StaleExtremaWarning`: every delete of a
        value at a partition's MIN / MAX leaves the bound conservative, and
        this ratio (``extremum deletes / max(1, build population)``) makes
        the accumulated looseness visible to scorecards and dashboards
        without anyone capturing warnings.  0.0 right after a (re)build.
        """
        return self._extrema_stale_deletes / max(1, self._build_population)

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def insert(self, row: Mapping[str, float]) -> None:
        """Insert one tuple: update path statistics, sketches, and the reservoir."""
        leaf = self._route(row)
        value = float(row[self._value_column])
        path = self._synopsis.tree.path_to_leaf(leaf)
        for node in path:
            node.stats = node.stats.add_value(value)
        self._synopsis.notify_stats_mutated(path)
        if self._synopsis.has_sketches and not np.isnan(value):
            sketches = self._synopsis.leaf_sketches_at(leaf.leaf_index)
            sketches.quantile.update(value)
            sketches.distinct.update(value)
        reservoir = self._reservoirs[leaf.leaf_index]
        reservoir.offer({column: float(row[column]) for column in self._sample_columns})
        self._refresh_leaf_sample(leaf)
        self._updates_since_build += 1

    def delete(self, row: Mapping[str, float]) -> None:
        """Delete one tuple: update path statistics and drop it from the sample.

        MIN / MAX bounds become conservative (they are not tightened on
        deletion); SUM / COUNT / AVG stay exact.
        """
        leaf = self._route(row)
        value = float(row[self._value_column])
        if leaf.stats.count == 0:
            raise ValueError("cannot delete from an empty partition")
        if value <= leaf.stats.min or value >= leaf.stats.max:
            # The deleted tuple may have been the partition's extremum; the
            # MIN / MAX bounds on the whole path are now only conservative.
            if not self._minmax_possibly_stale:
                warnings.warn(
                    "deleted a partition extremum: MIN/MAX node statistics are "
                    "now conservative (valid but possibly loose) until rebuild()",
                    StaleExtremaWarning,
                    stacklevel=2,
                )
            self._minmax_possibly_stale = True
            self._extrema_stale_deletes += 1
        path = self._synopsis.tree.path_to_leaf(leaf)
        for node in path:
            node.stats = node.stats.remove_value(value)
        self._synopsis.notify_stats_mutated(path)
        if self._synopsis.has_sketches and not np.isnan(value):
            # Sketches cannot un-see a value; track the drift instead (see
            # the module docstring and sketch_staleness).
            self._sketch_stale_deletes += 1
        reservoir = self._reservoirs[leaf.leaf_index]
        reservoir.discard(
            {column: float(row[column]) for column in self._sample_columns}
        )
        self._refresh_leaf_sample(leaf)
        self._updates_since_build += 1

    def query(self, query: AggregateQuery, lam: float | None = None) -> AQPResult:
        """Answer a query from the (updated) synopsis."""
        return self._synopsis.query(query, lam=lam)

    def rebuild(self, table: Table) -> None:
        """Re-optimize the synopsis from a fresh table snapshot."""
        self.__init__(
            table,
            self._value_column,
            self._predicate_columns,
            config=self._config,
            extra_sample_columns=self._extra_sample_columns,
        )

    # ------------------------------------------------------------------
    # Persistence (array export / import)
    # ------------------------------------------------------------------
    def to_arrays(self) -> tuple[dict[str, np.ndarray], dict]:
        """Export synopsis, reservoirs, and update counters as flat arrays.

        The reservoir *contents* round-trip exactly (so a reloaded instance
        answers queries identically); the reservoir RNG state is not
        persisted, so post-reload insertions make different (but equally
        valid) eviction choices.
        """
        arrays, header = self._synopsis.to_arrays()
        lengths = [len(reservoir) for reservoir in self._reservoirs]
        arrays["reservoir/offsets"] = np.concatenate([[0], np.cumsum(lengths)]).astype(
            np.int64
        )
        arrays["reservoir/seen"] = np.array(
            [reservoir.seen for reservoir in self._reservoirs], dtype=np.int64
        )
        arrays["reservoir/capacity"] = np.array(
            [reservoir.capacity for reservoir in self._reservoirs], dtype=np.int64
        )
        for column in self._sample_columns:
            parts = [reservoir.column(column) for reservoir in self._reservoirs]
            arrays[f"reservoir/column/{column}"] = (
                np.concatenate(parts) if parts else np.zeros(0, dtype=float)
            )
        config = dataclasses.asdict(self._config)
        config["agg_template"] = self._config.agg_template.value
        header.update(
            {
                "kind": "dynamic",
                "predicate_columns": list(self._predicate_columns),
                "extra_sample_columns": list(self._extra_sample_columns),
                "config": config,
                "updates_since_build": self._updates_since_build,
                "build_population": self._build_population,
                "minmax_possibly_stale": self._minmax_possibly_stale,
                "sketch_stale_deletes": self._sketch_stale_deletes,
                "extrema_stale_deletes": self._extrema_stale_deletes,
            }
        )
        return arrays, header

    @classmethod
    def from_arrays(
        cls,
        arrays: Mapping[str, np.ndarray],
        header: Mapping,
        rng: np.random.Generator | int | None = 0,
    ) -> "DynamicPASS":
        """Rebuild an instance exported with :meth:`to_arrays` (no re-build)."""
        synopsis = PASSSynopsis.from_arrays(dict(arrays), dict(header))
        generator = (
            rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        )
        instance = cls.__new__(cls)
        instance._value_column = str(header["value_column"])
        instance._predicate_columns = list(header["predicate_columns"])
        instance._extra_sample_columns = list(header.get("extra_sample_columns", []))
        instance._config = PASSConfig(**header["config"])
        instance._synopsis = synopsis
        instance._sample_columns = list(header["sample_columns"])
        offsets = np.asarray(arrays["reservoir/offsets"], dtype=np.int64)
        seen = np.asarray(arrays["reservoir/seen"], dtype=np.int64)
        capacity = np.asarray(arrays["reservoir/capacity"], dtype=np.int64)
        columns = {
            column: np.asarray(arrays[f"reservoir/column/{column}"], dtype=float)
            for column in instance._sample_columns
        }
        instance._reservoirs = []
        for i in range(len(seen)):
            reservoir = ReservoirSample(int(capacity[i]), rng=generator)
            for row_index in range(int(offsets[i]), int(offsets[i + 1])):
                reservoir.offer(
                    {
                        column: float(values[row_index])
                        for column, values in columns.items()
                    }
                )
            reservoir.rebase_seen(max(int(seen[i]), len(reservoir)))
            instance._reservoirs.append(reservoir)
        instance._updates_since_build = int(header["updates_since_build"])
        instance._build_population = int(header["build_population"])
        instance._minmax_possibly_stale = bool(header["minmax_possibly_stale"])
        instance._sketch_stale_deletes = int(header.get("sketch_stale_deletes", 0))
        instance._extrema_stale_deletes = int(header.get("extrema_stale_deletes", 0))
        return instance

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _route(self, row: Mapping[str, float]) -> PartitionNode:
        point = {
            column: float(row[column])
            for column in self._predicate_columns
            if column in row
        }
        if not point:
            raise KeyError(
                f"row must provide the predicate columns {self._predicate_columns}"
            )
        return self._synopsis.tree.leaf_for_point(point)

    def _refresh_leaf_sample(self, leaf: PartitionNode) -> None:
        """Rebuild the leaf's Stratum view from its reservoir contents."""
        reservoir = self._reservoirs[leaf.leaf_index]
        old = self._synopsis.leaf_samples[leaf.leaf_index]
        new_stratum = Stratum(
            box=old.box,
            size=leaf.stats.count,
            sample_columns=reservoir.as_columns(self._sample_columns),
        )
        self._synopsis.replace_leaf_sample(leaf.leaf_index, new_stratum)
