"""Building a PASS synopsis from a table and a :class:`PASSConfig`.

The builder performs the offline phase of Section 4: it runs the configured
partitioning optimizer to obtain the leaf partitioning, computes the exact
SUM / COUNT / MIN / MAX of every leaf, assembles the partition tree
bottom-up, draws the per-leaf stratified samples under the configured
sampling budget and mode (ESS or BSS), and (unless disabled via
``with_sketches=False``) attaches the mergeable per-leaf quantile and
distinct-count sketches that answer QUANTILE / COUNT_DISTINCT queries.
"""

from __future__ import annotations

import time
import warnings
from typing import Sequence

import numpy as np

from repro.aggregation.partition import PartitionStats
from repro.core.config import PASSConfig
from repro.core.pass_synopsis import PASSSynopsis
from repro.core.tree import PartitionTree
from repro.data.table import Table
from repro.partitioning.dp import (
    approximate_dp_partition,
    optimal_count_partition,
)
from repro.partitioning.equal import equal_depth_partition
from repro.partitioning.hill_climbing import hill_climbing_partition
from repro.partitioning.kdtree import kd_partition
from repro.query.predicate import Box
from repro.sampling.stratified import Stratum
from repro.sketches import LeafSketches

__all__ = [
    "build_pass",
    "build_leaf_boxes",
    "build_leaf_samples",
    "resolve_partitioner",
    "PartitionerFallbackWarning",
]

#: 1-D optimizers that cannot span several predicate columns.
_ONE_DIMENSIONAL_PARTITIONERS = ("adp", "equal", "count_optimal", "hill")


class PartitionerFallbackWarning(UserWarning):
    """Warns that a 1-D partitioner was swapped for the k-d construction."""


def resolve_partitioner(config: PASSConfig, predicate_columns: Sequence[str]) -> str:
    """The partitioner a build will actually run for these predicate columns.

    1-D optimizers cannot span several predicate columns, so multi-dimensional
    inputs fall back to the k-d construction of Section 4.4 with the matching
    policy.  The effective choice is recorded on the built synopsis
    (:attr:`PASSSynopsis.effective_partitioner`).
    """
    if (
        len(predicate_columns) > 1
        and config.partitioner in _ONE_DIMENSIONAL_PARTITIONERS
    ):
        return "kd"
    return config.partitioner


def build_leaf_boxes(
    table: Table,
    value_column: str,
    predicate_columns: Sequence[str],
    config: PASSConfig,
) -> list[Box]:
    """Run the configured partitioning optimizer and return the leaf boxes."""
    predicate_columns = list(predicate_columns)
    if not predicate_columns:
        raise ValueError("at least one predicate column is required")
    partitioner = resolve_partitioner(config, predicate_columns)
    if partitioner != config.partitioner:
        warnings.warn(
            f"partitioner {config.partitioner!r} is one-dimensional but "
            f"{len(predicate_columns)} predicate columns were given; using the "
            "k-d construction instead (pass partitioner='kd' or 'kd_us' to "
            "silence this warning)",
            PartitionerFallbackWarning,
            stacklevel=2,
        )

    rng = np.random.default_rng(config.seed)
    if partitioner == "equal":
        return equal_depth_partition(table, predicate_columns[0], config.n_partitions)
    if partitioner == "count_optimal":
        result = optimal_count_partition(
            table, predicate_columns[0], config.n_partitions
        )
        return list(result.boxes)
    if partitioner == "adp":
        result = approximate_dp_partition(
            table,
            value_column,
            predicate_columns[0],
            config.n_partitions,
            agg=config.agg_template,
            delta=config.delta,
            opt_sample_size=config.opt_sample_size,
            rng=rng,
        )
        return list(result.boxes)
    if partitioner == "hill":
        result = hill_climbing_partition(
            table,
            value_column,
            predicate_columns[0],
            config.n_partitions,
            agg=config.agg_template,
            delta=config.delta,
            opt_sample_size=config.opt_sample_size,
            rng=rng,
        )
        return list(result.boxes)
    policy = "max_variance" if partitioner == "kd" else "breadth_first"
    kd_result = kd_partition(
        table,
        value_column,
        predicate_columns,
        config.n_partitions,
        policy=policy,
        agg=config.agg_template,
        delta=config.delta,
        opt_sample_size=config.opt_sample_size,
        rng=rng,
    )
    return list(kd_result.boxes)


def build_leaf_samples(
    table: Table,
    value_column: str,
    predicate_columns: Sequence[str],
    leaf_boxes: Sequence[Box],
    config: PASSConfig,
    extra_columns: Sequence[str] | None = None,
) -> list[Stratum]:
    """Draw the per-leaf stratified samples under the configured budget.

    In ESS mode every leaf is sampled at the configured rate, so any query
    touches at most the uniform-sampling budget's worth of tuples.  In BSS
    mode the total number of stored samples is capped and split across leaves
    according to the allocation policy.  ``extra_columns`` are carried in the
    samples beyond the value / predicate / box columns (the distributed layer
    keeps the shard column this way, so shard-column predicates stay
    evaluable inside shards partitioned on other columns).
    """
    rng = np.random.default_rng(config.seed + 1)
    keep_columns = [value_column] + [
        column for column in predicate_columns if column != value_column
    ]
    for column in extra_columns or ():
        if column not in keep_columns:
            keep_columns.append(column)
    box_columns = sorted({col for box in leaf_boxes for col in box.columns})
    for column in box_columns:
        if column not in keep_columns:
            keep_columns.append(column)
    data = table.columns(keep_columns)

    masks = [box.mask({col: data[col] for col in box.columns}) for box in leaf_boxes]
    sizes = [int(mask.sum()) for mask in masks]
    n_dimensions = max(1, len({col for box in leaf_boxes for col in box.columns}))
    budgets = _leaf_budgets(table.n_rows, sizes, config, n_dimensions)

    samples: list[Stratum] = []
    for box, mask, size, budget in zip(leaf_boxes, masks, sizes, budgets):
        indices = np.flatnonzero(mask)
        n_draw = min(budget, size)
        if n_draw > 0:
            chosen = rng.choice(indices, size=n_draw, replace=False)
        else:
            chosen = np.array([], dtype=int)
        sample_columns = {
            column: data[column][chosen].astype(float) for column in keep_columns
        }
        samples.append(Stratum(box=box, size=size, sample_columns=sample_columns))
    return samples


def _leaf_budgets(
    n_rows: int, sizes: Sequence[int], config: PASSConfig, n_dimensions: int
) -> list[int]:
    """Per-leaf sample budgets for the configured mode and allocation.

    ESS mode controls the *per-query* IO: a rectangular query partially
    intersects at most ``2 * d`` leaves of a d-dimensional partitioning along
    its boundary, so giving every leaf ``K / (2 d)`` samples keeps the tuples
    processed per query at roughly the uniform-sampling budget ``K`` while
    letting the synopsis store far more samples in total (Section 5.1.4).
    BSS mode instead caps the *total* stored samples at the budget and splits
    it across leaves according to the allocation policy.
    """
    non_empty = [size for size in sizes if size > 0]
    if not non_empty:
        return [0 for _ in sizes]
    total = config.total_sample_budget(n_rows)
    if config.mode == "ess":
        per_leaf = max(1, total // max(1, 2 * n_dimensions))
        return [min(per_leaf, size) if size > 0 else 0 for size in sizes]
    if config.allocation == "equal":
        per_leaf = max(1, total // len(non_empty))
        return [min(per_leaf, size) if size > 0 else 0 for size in sizes]
    population = sum(sizes)
    return [
        max(1, int(round(total * size / population))) if size > 0 else 0
        for size in sizes
    ]


def build_pass(
    table: Table,
    value_column: str,
    predicate_columns: Sequence[str],
    config: PASSConfig | None = None,
    leaf_boxes: Sequence[Box] | None = None,
    extra_sample_columns: Sequence[str] | None = None,
) -> PASSSynopsis:
    """Build a PASS synopsis for a table.

    Parameters
    ----------
    table:
        Source table.
    value_column:
        Aggregation column ``A``.
    predicate_columns:
        Predicate columns ``C1..Cd``; a single column selects the 1-D
        optimizers, several columns select the k-d construction.
    config:
        Build configuration (defaults to :class:`PASSConfig`'s defaults:
        64 partitions, 0.5% per-leaf sample rate, ADP partitioner).
    leaf_boxes:
        Pre-computed leaf partitioning; when given, the partitioning
        optimizer is skipped (used by the ablation benchmarks to compare
        partitioners on otherwise identical synopses).
    extra_sample_columns:
        Additional columns to retain in the leaf samples (see
        :func:`build_leaf_samples`).
    """
    config = config or PASSConfig()
    predicate_columns = list(predicate_columns)
    start = time.perf_counter()
    if leaf_boxes is None:
        effective_partitioner = resolve_partitioner(config, predicate_columns)
        leaf_boxes = build_leaf_boxes(table, value_column, predicate_columns, config)
    else:
        effective_partitioner = "precomputed"
    leaf_boxes = list(leaf_boxes)

    values = table.column(value_column).astype(float)
    stats: list[PartitionStats] = []
    leaf_sketches: list[LeafSketches] | None = [] if config.with_sketches else None
    for box in leaf_boxes:
        mask = box.mask(table.columns(box.columns))
        leaf_values = values[mask]
        stats.append(PartitionStats.from_values(leaf_values))
        if leaf_sketches is not None:
            leaf_sketches.append(
                LeafSketches.from_values(
                    leaf_values,
                    quantile_k=config.sketch_quantile_k,
                    distinct_k=config.sketch_distinct_k,
                )
            )

    fanout = config.fanout
    if fanout is None:
        fanout = (
            2 if len(predicate_columns) == 1 else min(8, 2 ** len(predicate_columns))
        )
    tree = PartitionTree.build_from_leaves(leaf_boxes, stats, fanout=fanout)
    samples = build_leaf_samples(
        table,
        value_column,
        predicate_columns,
        leaf_boxes,
        config,
        extra_columns=extra_sample_columns,
    )
    build_seconds = time.perf_counter() - start
    return PASSSynopsis(
        tree=tree,
        leaf_samples=samples,
        value_column=value_column,
        lam=config.lam,
        zero_variance_rule=config.zero_variance_rule,
        with_fpc=config.with_fpc,
        build_seconds=build_seconds,
        effective_partitioner=effective_partitioner,
        leaf_sketches=leaf_sketches,
        execution=config.execution,
    )
