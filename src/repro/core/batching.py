"""Vectorized batch and grouped query execution against one PASS synopsis.

Answering a batch of queries one by one re-evaluates the predicate of every
query against every partially-overlapped leaf's sample columns.  When many
queries touch the same leaf — the normal case for dashboard traffic, grouped
aggregation, and scatter-gather over shards — those per-query mask
evaluations can be fused:

* queries with *identical* predicates (a SUM / COUNT / AVG triple over one
  region, or the aggregates of one group cell) share a single mask per leaf,
  and
* the remaining distinct predicates touching a leaf (grouped by
  constrained-column set) are evaluated in one broadcasted comparison.

The fused masks are then fed through the regular estimator path
(:meth:`repro.core.pass_synopsis.PASSSynopsis.query` accepts precomputed
masks), so batched results are identical to sequential ones by construction.
The serving engine's ``execute_batch``, the distributed layer's
scatter-gather path, and the grouped executor below all build on
:func:`batch_query` / :func:`batch_leaf_masks`.

:func:`grouped_query` is the single-synopsis executor for compiled
:class:`~repro.query.groupby.GroupByPlan` batches.  It exploits the grouped
shape beyond what :func:`batch_query` can see: one MCF frontier per group
cell is shared by every aggregate of the cell (a G-cell, A-aggregate query
costs G index lookups and G mask passes rather than G x A), and cells whose
frontier statistics show zero matching tuples are answered as empty without
dispatching anything.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.aggregation.strat_agg import hard_bounds
from repro.core.pass_synopsis import PASSSynopsis, sketch_union_result
from repro.core.tree import BatchFrontiers, MCFResult
from repro.obs import Observability
from repro.query.aggregates import SKETCH_AGGREGATES, AggregateType
from repro.query.groupby import (
    GroupByPlan,
    GroupedResult,
    empty_group_result,
)
from repro.query.predicate import RectPredicate
from repro.query.query import AggregateQuery
from repro.result import AQPResult
from repro.sampling.estimators import (
    EstimateWithVariance,
    finite_population_correction,
    ratio_estimate,
)

__all__ = [
    "BatchPlan",
    "compile_batch",
    "batch_query",
    "batch_leaf_masks",
    "grouped_query",
    "frontier_count",
]


class BatchPlan:
    """A compiled batch against one synopsis: frontiers, masks, dedup slots.

    Compilation (:func:`compile_batch`) is separated from execution so a
    scheduler can pre-compile a micro-batch — one *vectorized* MCF pass for
    the whole batch (:meth:`~repro.core.tree.PartitionTree.
    batch_coverage_frontiers`), with one frontier slot per distinct
    predicate (queries sharing a predicate, e.g. the SUM / COUNT / AVG
    triple of one dashboard panel, share a frontier object) — and then
    execute the plan under whatever locking regime the serving layer
    requires.  Sample match masks are computed lazily on first use: the
    per-query exact path needs them for every query, while the vectorized
    path reduces masks and moments in one fused pass and only materializes
    per-query masks for sketch aggregates.

    A plan reads node statistics and leaf samples at *execution* time, so
    compile and execute must happen within one update-free scope (the
    serving engine runs both under a single read-lock acquisition); a plan
    compiled before a dynamic update must not be executed after it.

    Attributes
    ----------
    synopsis:
        The synopsis the plan was compiled against.
    queries:
        The batch, in input order.
    frontiers:
        Per-query MCF frontiers; queries with equal canonical predicates
        (and equal AVG-ness, see :func:`compile_batch`) share the same
        frontier object.
    slots:
        Per-query frontier-slot index (slot order follows
        :attr:`slot_queries`, the first query compiled for each slot).
    """

    def __init__(
        self,
        synopsis: PASSSynopsis,
        queries: list[AggregateQuery],
        slots: list[int],
        slot_queries: list[AggregateQuery],
        batch_frontiers: BatchFrontiers,
        obs: Observability | None = None,
    ) -> None:
        self.synopsis = synopsis
        self.queries = queries
        self.slots = slots
        self.slot_queries = slot_queries
        self.batch_frontiers = batch_frontiers
        self.obs = obs if obs is not None else Observability.disabled()
        self._slot_frontiers: list[MCFResult] | None = None
        self._frontiers: list[MCFResult] | None = None
        self._masks: list[dict[int, np.ndarray]] | None = None

    @property
    def slot_frontiers(self) -> list[MCFResult]:
        """Per-slot materialized MCF frontiers (lazy; shared objects)."""
        if self._slot_frontiers is None:
            self._slot_frontiers = self.batch_frontiers.results()
        return self._slot_frontiers

    @property
    def frontiers(self) -> list[MCFResult]:
        """Per-query MCF frontiers (lazy; slot-mates share one object)."""
        if self._frontiers is None:
            slot_frontiers = self.slot_frontiers
            self._frontiers = [slot_frontiers[slot] for slot in self.slots]
        return self._frontiers

    @property
    def masks(self) -> list[dict[int, np.ndarray]]:
        """Per-query per-leaf sample match masks (computed lazily, shared
        across queries with equal canonical predicates)."""
        if self._masks is None:
            self._masks = batch_leaf_masks(self.synopsis, self.queries, self.frontiers)
        return self._masks

    def execute(self) -> list[AQPResult]:
        """Answer the batch through the per-query estimator path.

        Results align with the input order and are bit-identical to calling
        ``synopsis.query(query)`` per query.
        """
        with self.obs.tracer.span("execute.per_query") as span:
            span.set_attribute("batch_size", len(self.queries))
            return [
                self.synopsis.query(query, match_masks=mask, frontier=frontier)
                for query, mask, frontier in zip(
                    self.queries, self.masks, self.frontiers
                )
            ]

    def execute_vectorized(self) -> list[AQPResult]:
        """Answer the batch straight from the frontier mask matrices.

        Instead of running the stratified estimator once per query, the
        whole batch assembles array-at-a-time: covered-node totals and hard
        bounds come from matrix products of the frontier masks with fresh
        per-node statistic arrays, and the partially-overlapped leaves are
        reduced to per-slot sufficient statistics (matched count, value
        sum, sum of squares, extrema) with one broadcasted mask pass per
        touched leaf — the same reduction :func:`grouped_query` uses per
        group cell.  Estimates follow the same stratified formulas as
        :meth:`PASSSynopsis.query` and agree with sequential execution up
        to floating-point summation order, with the one semantic difference
        documented on :func:`grouped_query`: AVG combines the shared SUM /
        COUNT totals through the ratio estimator instead of the AVG-only
        zero-variance shortcut.  Sketch aggregates (QUANTILE /
        COUNT_DISTINCT) fall back to the per-query path over the shared
        frontiers.
        """
        synopsis = self.synopsis
        results: list[AQPResult | None] = [None] * len(self.queries)
        # Aggregates requested per distinct-predicate slot (classic only).
        slot_aggs: list[list[AggregateType]] = [[] for _ in self.slot_queries]
        slot_members: list[list[int]] = [[] for _ in self.slot_queries]
        sketch_indices = []
        for index, (query, slot) in enumerate(zip(self.queries, self.slots)):
            if query.agg in SKETCH_AGGREGATES:
                sketch_indices.append(index)
            else:
                slot_aggs[slot].append(query.agg)
                slot_members[slot].append(index)
        if sketch_indices:
            # Sketch aggregates keep the per-query estimator; their masks
            # are materialized for just this subset of the batch.
            sketch_queries = [self.queries[i] for i in sketch_indices]
            sketch_frontiers = [self.frontiers[i] for i in sketch_indices]
            sketch_masks = batch_leaf_masks(synopsis, sketch_queries, sketch_frontiers)
            for index, query, frontier, mask in zip(
                sketch_indices, sketch_queries, sketch_frontiers, sketch_masks
            ):
                results[index] = synopsis.query(
                    query, match_masks=mask, frontier=frontier
                )

        if any(slot_members):
            with self.obs.tracer.span("masks.reduceat") as span:
                span.set_attribute("batch_size", len(self.queries))
                span.set_attribute("slots", len(self.slot_queries))
                rows = _assemble_from_masks(
                    synopsis,
                    self.batch_frontiers,
                    [query.predicate for query in self.slot_queries],
                    slot_aggs,
                )
            for slot, members in enumerate(slot_members):
                for index, result in zip(members, rows[slot]):
                    results[index] = result
        return results  # type: ignore[return-value]


def compile_batch(
    synopsis: PASSSynopsis,
    queries: Sequence[AggregateQuery],
    obs: Observability | None = None,
) -> BatchPlan:
    """Compile a batch: one vectorized MCF pass over deduplicated slots.

    Frontier slots dedupe per (canonical predicate, AVG-ness): AVG lookups
    may descend differently under the zero-variance rule (Section 3.4), so
    an AVG query never shares a frontier slot with a SUM / COUNT over the
    same predicate — keeping :meth:`BatchPlan.execute` bit-identical to
    sequential execution.

    With an enabled ``obs``, compilation emits ``plan.compile`` /
    ``frontier.descent`` spans carrying the tree statistics
    (``nodes_visited``, covered / partial leaf counts) and the plan carries
    the context into its execution spans.
    """
    obs = obs if obs is not None else Observability.disabled()
    with obs.tracer.span("plan.compile") as compile_span:
        queries = list(queries)
        slots: list[int] = []
        slot_by_key: dict[tuple, int] = {}
        slot_queries: list[AggregateQuery] = []
        for query in queries:
            key = (query.predicate.canonical_key(), query.agg == AggregateType.AVG)
            slot = slot_by_key.get(key)
            if slot is None:
                slot = len(slot_queries)
                slot_by_key[key] = slot
                slot_queries.append(query)
            slots.append(slot)
        zero_variance = synopsis.zero_variance_rule
        with obs.tracer.span("frontier.descent") as descent_span:
            batch_frontiers = synopsis.tree.batch_coverage_frontiers(
                [query.predicate for query in slot_queries],
                [
                    zero_variance and query.agg == AggregateType.AVG
                    for query in slot_queries
                ],
                with_masks=True,
            )
            assert isinstance(batch_frontiers, BatchFrontiers)
            if obs.enabled:
                descent_span.set_attribute(
                    "nodes_visited", int(batch_frontiers.nodes_visited.sum())
                )
                descent_span.set_attribute(
                    "covered_nodes", int(batch_frontiers.covered_mask.sum())
                )
                descent_span.set_attribute(
                    "partial_leaves", int(batch_frontiers.partial_mask.sum())
                )
        compile_span.set_attribute("batch_size", len(queries))
        compile_span.set_attribute("slots", len(slot_queries))
        return BatchPlan(
            synopsis=synopsis,
            queries=queries,
            slots=slots,
            slot_queries=slot_queries,
            batch_frontiers=batch_frontiers,
            obs=obs,
        )


def batch_query(
    synopsis: PASSSynopsis,
    queries: Sequence[AggregateQuery],
    vectorized: bool = False,
    obs: Observability | None = None,
) -> list[AQPResult]:
    """Answer several queries against one synopsis with shared mask work.

    Results align with the input order and are identical to calling
    ``synopsis.query(query)`` per query; with ``vectorized=True`` the batch
    runs through :meth:`BatchPlan.execute_vectorized` instead (equal up to
    floating-point summation order, faster for batches of tens of queries).
    """
    plan = compile_batch(synopsis, queries, obs=obs)
    return plan.execute_vectorized() if vectorized else plan.execute()


def batch_leaf_masks(
    synopsis: PASSSynopsis,
    queries: Sequence[AggregateQuery],
    frontiers: Sequence[MCFResult],
) -> list[dict[int, np.ndarray]]:
    """Vectorized sample match masks for a batch of queries.

    For every leaf partially overlapped by at least one query, the interval
    tests of the *distinct* predicates touching that leaf (queries with equal
    canonical predicates share one mask row, grouped by constrained-column
    set for broadcasting) are evaluated against the leaf's sample columns in
    one comparison, instead of once per query.  Each mask row equals what
    ``Stratum.match_mask`` computes for the same query, so feeding the masks
    through ``PASSSynopsis.query`` yields identical results.
    """
    predicate_keys = [query.predicate.canonical_key() for query in queries]
    per_leaf: dict[int, list[int]] = {}
    for index, frontier in enumerate(frontiers):
        for node in frontier.partial:
            per_leaf.setdefault(node.leaf_index, []).append(index)

    masks: list[dict[int, np.ndarray]] = [{} for _ in queries]
    strata = synopsis.leaf_samples
    for leaf_index, members in per_leaf.items():
        stratum = strata[leaf_index]
        n_samples = stratum.sample_size
        if n_samples == 0:
            empty = np.zeros(0, dtype=bool)
            for index in members:
                masks[index][leaf_index] = empty
            continue
        # One mask per distinct predicate; duplicates share the array.
        unique: dict[tuple, list[int]] = {}
        for index in members:
            unique.setdefault(predicate_keys[index], []).append(index)
        groups: dict[tuple[str, ...], list[tuple]] = {}
        for key in unique:
            columns = tuple(column for column, _, _ in key)
            groups.setdefault(columns, []).append(key)
        for columns, keys in groups.items():
            if not columns:
                everything = np.ones(n_samples, dtype=bool)
                for key in keys:
                    for index in unique[key]:
                        masks[index][leaf_index] = everything
                continue
            matrix = np.ones((len(keys), n_samples), dtype=bool)
            bounds = {
                column: np.array(
                    [
                        [low, high]
                        for key in keys
                        for k_column, low, high in key
                        if k_column == column
                    ]
                )
                for column in columns
            }
            for column in columns:
                values = stratum.sample_columns[column]
                lows = bounds[column][:, 0]
                highs = bounds[column][:, 1]
                matrix &= (values[None, :] >= lows[:, None]) & (
                    values[None, :] <= highs[:, None]
                )
            for row, key in enumerate(keys):
                shared = matrix[row]
                for index in unique[key]:
                    masks[index][leaf_index] = shared
    return masks


def _assemble_from_masks(
    synopsis: PASSSynopsis,
    batch_frontiers: BatchFrontiers,
    predicates: Sequence[RectPredicate],
    slot_aggs: Sequence[Sequence[AggregateType]],
) -> list[tuple[AQPResult, ...]]:
    """Assemble per-slot classic-aggregate answers from frontier masks.

    Mirrors the stratified estimator formulas of ``PASSSynopsis.query`` /
    :func:`_assemble_cell_row` array-at-a-time: covered-node totals and
    hard bounds are matrix products of the (nodes x slots) frontier masks
    with fresh node statistic arrays, and each partially-overlapped leaf
    contributes per-slot sample moments through one broadcasted comparison.
    Returns one result tuple per slot, aligned with ``slot_aggs``.
    """
    geometry = batch_frontiers.geometry
    covered = batch_frontiers.covered_mask
    partial = batch_frontiers.partial_mask
    n_slots = len(predicates)
    # The flat engine hands over its synced stat arrays and CSR samples
    # (same values, no O(nodes) rebuild / per-leaf asarray+concatenate).
    flat = synopsis.flat if synopsis.execution == "soa" else None
    if flat is not None:
        node_sum, node_count, node_min, node_max = flat.node_stat_arrays()
    else:
        node_sum, node_count, node_min, node_max = geometry.node_stat_arrays()
    lam = synopsis.lam
    with_fpc = synopsis.with_fpc
    population = synopsis.population_size
    value_column = synopsis.value_column

    classic = np.fromiter((bool(aggs) for aggs in slot_aggs), dtype=bool, count=n_slots)
    need_extrema = any(
        agg in (AggregateType.MIN, AggregateType.MAX)
        for aggs in slot_aggs
        for agg in aggs
    )
    need_avg = any(agg == AggregateType.AVG for aggs in slot_aggs for agg in aggs)

    covered_f = covered.astype(float)
    partial_f = partial.astype(float)
    cov_sum = node_sum @ covered_f
    cov_count = node_count @ covered_f
    par_sum = node_sum @ partial_f
    par_count = node_count @ partial_f
    exact = ~partial.any(axis=0)

    # Non-empty masks drive the extremum bounds (hard_bounds drops empty
    # partitions before taking minima / maxima).
    nonempty = node_count > 0
    cov_ne = covered & nonempty[:, None]
    par_ne = partial & nonempty[:, None]
    has_cov_ne = cov_ne.any(axis=0)
    has_par_ne = par_ne.any(axis=0)
    if need_extrema or need_avg:
        cov_min = np.where(cov_ne, node_min[:, None], np.inf).min(axis=0)
        cov_max = np.where(cov_ne, node_max[:, None], -np.inf).max(axis=0)
        bnd_par_min = np.where(par_ne, node_min[:, None], np.inf).min(axis=0)
        bnd_par_max = np.where(par_ne, node_max[:, None], -np.inf).max(axis=0)
    else:
        cov_min = cov_max = bnd_par_min = bnd_par_max = np.zeros(n_slots)

    # Partial-leaf sample moments, accumulated per slot.
    est_sum = np.zeros(n_slots)
    var_sum = np.zeros(n_slots)
    est_cnt = np.zeros(n_slots)
    var_cnt = np.zeros(n_slots)
    nan_var = np.zeros(n_slots, dtype=bool)
    processed = np.zeros(n_slots)
    sample_min = np.full(n_slots, np.inf)
    sample_max = np.full(n_slots, -np.inf)

    strata = synopsis.leaf_samples
    # Per-slot predicate bounds, hoisted out of the leaf loop: slots that do
    # not constrain a column get ±inf (their comparisons are all-true).
    batch_columns: dict[str, None] = {}
    for slot in np.flatnonzero(classic):
        for column, _, _ in predicates[slot].canonical_key():
            batch_columns.setdefault(column, None)
    slot_lows = {}
    slot_highs = {}
    for column in batch_columns:
        intervals = [predicate.interval(column) for predicate in predicates]
        slot_lows[column] = np.array([interval.low for interval in intervals])
        slot_highs[column] = np.array([interval.high for interval in intervals])
    partial_classic = partial & classic[None, :]
    sampled_rows = []
    for row in np.flatnonzero(partial_classic.any(axis=1)):
        size = node_count[row]
        if size == 0:
            # Sequential estimators skip empty partial leaves entirely.
            continue
        leaf = int(geometry.leaf_index[row])
        leaf_samples = (
            flat.sample_count(leaf) if flat is not None else strata[leaf].sample_size
        )
        if leaf_samples == 0:
            # Unsampled leaf: hard-bound midpoint, unknown variance.
            touching = np.flatnonzero(partial_classic[row])
            est_sum[touching] += 0.5 * node_sum[row]
            est_cnt[touching] += 0.5 * size
            nan_var[touching] = True
        else:
            sampled_rows.append(row)

    if sampled_rows:
        # One fused mask + moments pass over the *concatenation* of every
        # sampled partial leaf: the (slots x samples) match matrix is
        # pre-zeroed where a slot does not overlap a sample's leaf, and
        # np.add.reduceat folds it back into per-(slot, leaf) sufficient
        # statistics without any per-leaf Python looping.
        rows_arr = np.asarray(sampled_rows)
        leaf_ids = geometry.leaf_index[rows_arr]
        if flat is not None:
            leaf_strata = None
            seg_sizes = np.array([flat.sample_count(i) for i in leaf_ids])
        else:
            leaf_strata = [strata[i] for i in leaf_ids]
            seg_sizes = np.array([stratum.sample_size for stratum in leaf_strata])

        def concat_column(column: str) -> np.ndarray:
            if flat is not None:
                return flat.gather_samples(leaf_ids, column)
            return np.concatenate(
                [
                    np.asarray(stratum.sample_columns[column], dtype=float)
                    for stratum in leaf_strata
                ]
            )

        offsets = np.zeros(len(seg_sizes), dtype=np.int64)
        np.cumsum(seg_sizes[:-1], out=offsets[1:])
        allowed = partial_classic[rows_arr].T  # (n_slots, n_leaves)
        matrix = np.repeat(allowed, seg_sizes, axis=1)
        for column in batch_columns:
            col_values = concat_column(column)
            matrix &= (col_values[None, :] >= slot_lows[column][:, None]) & (
                col_values[None, :] <= slot_highs[column][:, None]
            )
        values_all = concat_column(value_column)
        matrix_f = matrix.astype(float)
        matched = np.add.reduceat(matrix_f, offsets, axis=1)
        sums = np.add.reduceat(matrix_f * values_all[None, :], offsets, axis=1)
        sums_sq = np.add.reduceat(
            matrix_f * (values_all * values_all)[None, :], offsets, axis=1
        )
        mean = sums / seg_sizes[None, :]
        mean_cnt = matched / seg_sizes[None, :]
        multi = (seg_sizes > 1)[None, :]
        variance_s = np.where(
            multi, np.maximum(sums_sq / seg_sizes[None, :] - mean * mean, 0.0), 0.0
        )
        variance_c = np.where(
            multi, np.maximum(mean_cnt - mean_cnt * mean_cnt, 0.0), 0.0
        )
        leaf_sizes = node_count[rows_arr]
        scale = leaf_sizes * leaf_sizes / seg_sizes
        if with_fpc:
            safe_denominator = np.maximum(leaf_sizes - 1.0, 1.0)
            scale = scale * np.where(
                leaf_sizes > 1,
                np.maximum((leaf_sizes - seg_sizes) / safe_denominator, 0.0),
                1.0,
            )
        est_sum += (leaf_sizes[None, :] * mean).sum(axis=1)
        var_sum += (scale[None, :] * variance_s).sum(axis=1)
        est_cnt += (leaf_sizes[None, :] * mean_cnt).sum(axis=1)
        var_cnt += (scale[None, :] * variance_c).sum(axis=1)
        processed += allowed @ seg_sizes
        if need_extrema:
            sample_min = np.minimum(
                sample_min,
                np.minimum.reduceat(
                    np.where(matrix, values_all[None, :], np.inf), offsets, axis=1
                ).min(axis=1),
            )
            sample_max = np.maximum(
                sample_max,
                np.maximum.reduceat(
                    np.where(matrix, values_all[None, :], -np.inf), offsets, axis=1
                ).max(axis=1),
            )

    total_sum = cov_sum + est_sum
    total_cnt = cov_count + est_cnt
    skipped = population - par_count

    rows: list[tuple[AQPResult, ...]] = []
    for slot in range(n_slots):
        aggs = slot_aggs[slot]
        if not aggs:
            rows.append(())
            continue
        is_exact = bool(exact[slot])
        slot_nan = bool(nan_var[slot])
        slot_processed = int(processed[slot])
        slot_skipped = int(skipped[slot])
        row = []
        for agg in aggs:
            if agg in (AggregateType.MIN, AggregateType.MAX):
                row.append(
                    _extremum_result_from_arrays(
                        agg, slot, is_exact, slot_processed, slot_skipped,
                        cov_min, cov_max, bnd_par_min, bnd_par_max,
                        has_cov_ne, has_par_ne, sample_min, sample_max,
                    )
                )
                continue
            if agg == AggregateType.AVG:
                num, num_var = total_sum[slot], var_sum[slot]
                den, den_var = total_cnt[slot], var_cnt[slot]
                if slot_nan:
                    num_var = den_var = float("nan")
                if den == 0:
                    estimate, variance = float("nan"), float("nan")
                elif is_exact:
                    estimate, variance = num / den, 0.0
                else:
                    combined = ratio_estimate(
                        EstimateWithVariance(num, num_var),
                        EstimateWithVariance(den, den_var),
                    )
                    estimate, variance = combined.estimate, combined.variance
                # hard_bounds AVG: covered average vs non-empty partial extrema.
                cov_avg = (
                    cov_sum[slot] / cov_count[slot]
                    if cov_count[slot]
                    else float("nan")
                )
                if cov_count[slot] and has_par_ne[slot]:
                    lower = min(cov_avg, bnd_par_min[slot])
                    upper = max(cov_avg, bnd_par_max[slot])
                elif cov_count[slot]:
                    lower = upper = cov_avg
                elif has_par_ne[slot]:
                    lower, upper = bnd_par_min[slot], bnd_par_max[slot]
                else:
                    lower = upper = float("nan")
            else:
                is_sum = agg == AggregateType.SUM
                estimate = total_sum[slot] if is_sum else total_cnt[slot]
                variance = (
                    float("nan")
                    if slot_nan
                    else (var_sum[slot] if is_sum else var_cnt[slot])
                )
                base = cov_sum[slot] if is_sum else cov_count[slot]
                extra = par_sum[slot] if is_sum else par_count[slot]
                lower, upper = base, base + extra
            if is_exact:
                half_width, variance = 0.0, 0.0
            elif math.isnan(variance):
                half_width = float("nan")
            else:
                half_width = lam * math.sqrt(max(variance, 0.0))
            row.append(
                AQPResult(
                    estimate=float(estimate),
                    ci_half_width=half_width,
                    variance=float(variance),
                    hard_lower=float(lower),
                    hard_upper=float(upper),
                    tuples_processed=slot_processed,
                    tuples_skipped=slot_skipped,
                    exact=is_exact,
                )
            )
        rows.append(tuple(row))
    return rows


def _extremum_result_from_arrays(
    agg: AggregateType,
    slot: int,
    is_exact: bool,
    processed: int,
    skipped: int,
    cov_min: np.ndarray,
    cov_max: np.ndarray,
    bnd_par_min: np.ndarray,
    bnd_par_max: np.ndarray,
    has_cov_ne: np.ndarray,
    has_par_ne: np.ndarray,
    sample_min: np.ndarray,
    sample_max: np.ndarray,
) -> AQPResult:
    """One MIN / MAX answer from the per-slot extremum arrays."""
    is_max = agg == AggregateType.MAX
    candidates = []
    if is_max:
        if not math.isinf(cov_max[slot]):
            candidates.append(cov_max[slot])
        if not math.isinf(sample_max[slot]):
            candidates.append(sample_max[slot])
        estimate = max(candidates) if candidates else float("nan")
    else:
        if not math.isinf(cov_min[slot]):
            candidates.append(cov_min[slot])
        if not math.isinf(sample_min[slot]):
            candidates.append(sample_min[slot])
        estimate = min(candidates) if candidates else float("nan")
    # hard_bounds MIN / MAX over non-empty covered and partial partitions.
    if not has_cov_ne[slot] and not has_par_ne[slot]:
        lower = upper = float("nan")
    elif is_max:
        lower = cov_max[slot] if has_cov_ne[slot] else float("-inf")
        upper = max(cov_max[slot], bnd_par_max[slot])
    else:
        upper = cov_min[slot] if has_cov_ne[slot] else float("inf")
        lower = min(cov_min[slot], bnd_par_min[slot])
    return AQPResult(
        estimate=float(estimate),
        ci_half_width=0.0 if is_exact else float("nan"),
        variance=0.0 if is_exact else float("nan"),
        hard_lower=float(lower),
        hard_upper=float(upper),
        tuples_processed=processed,
        tuples_skipped=skipped,
        exact=is_exact,
    )


def frontier_count(frontier: MCFResult) -> int:
    """Number of dataset tuples inside a frontier's covered + partial nodes.

    This is an upper bound on how many tuples a query over the frontier's
    predicate can match, read entirely from precomputed partition statistics
    — zero means the predicate region is provably empty.
    """
    return sum(node.stats.count for node in frontier.covered) + sum(
        node.stats.count for node in frontier.partial
    )


#: Per-cell, per-leaf sufficient statistics of the masked sample: the number
#: of matching samples, their value sum and sum of squares, and (when an
#: extremum aggregate asked for them) their min / max.
_LeafMoments = tuple[int, float, float, float, float, float]


def grouped_query(
    synopsis: PASSSynopsis, plan: GroupByPlan, lam: float | None = None
) -> GroupedResult:
    """Answer a compiled group-by plan with vectorized grouped execution.

    The executor exploits the grouped shape beyond what :func:`batch_query`
    can see:

    * one MCF lookup per group cell is shared by every aggregate of the cell
      (G lookups instead of G x A);
    * cells whose frontier statistics show zero matching tuples are answered
      as exact empty groups without touching any sample;
    * per partially-overlapped leaf, the match masks of every cell touching
      it are evaluated in one broadcasted comparison and immediately reduced
      to sufficient statistics (matched count, value sum, sum of squares,
      extrema) with matrix products, so no per-(cell, aggregate) pass over
      sample values remains — SUM / COUNT / AVG / MIN / MAX all assemble
      from the same per-(cell, leaf) moments.

    Estimates, variances, and bounds follow the exact same stratified
    formulas as ``synopsis.query`` and agree with sequential execution up to
    floating-point summation order.  The one semantic difference: AVG reuses
    the cell's shared frontier, skipping the AVG-only zero-variance shortcut
    (Section 3.4) — answers stay valid and only partially-overlapped
    constant-valued partitions would ever notice.

    Sketch aggregates (QUANTILE / COUNT_DISTINCT) ride the same per-cell
    frontier: each surviving cell reduces to its mergeable sketch union
    (:meth:`PASSSynopsis.sketch_union`) over the frontier already computed
    for the classic aggregates, so a mixed plan still costs one index lookup
    per cell and the sketch answers equal sequential ``synopsis.query``
    execution exactly.
    """
    lam = synopsis.lam if lam is None else lam
    with_fpc = synopsis.with_fpc
    value_column = synopsis.value_column
    for spec in plan.aggregates:
        if spec.value_column != value_column:
            raise ValueError(
                f"synopsis was built for column {value_column!r}, "
                f"aggregate targets {spec.value_column!r}"
            )
    classic_slots = [
        i for i, spec in enumerate(plan.aggregates) if spec.agg not in SKETCH_AGGREGATES
    ]
    sketch_slots = [
        i for i, spec in enumerate(plan.aggregates) if spec.agg in SKETCH_AGGREGATES
    ]
    if sketch_slots and not synopsis.has_sketches:
        raise ValueError(
            "synopsis was built without sketches and cannot answer "
            "QUANTILE / COUNT_DISTINCT aggregates; rebuild with "
            "PASSConfig(with_sketches=True)"
        )
    population = synopsis.population_size
    need_extrema = any(
        plan.aggregates[i].agg in (AggregateType.MIN, AggregateType.MAX)
        for i in classic_slots
    )

    # The array-native engine answers the whole classic-aggregate pipeline
    # (frontiers, moments, cell assembly) over flat arrays; both branches
    # produce bit-identical rows (tests/test_soa_equivalence.py).
    flat = synopsis.flat if synopsis.execution == "soa" else None
    surviving: list[tuple[int, "object", object]] = []
    if flat is not None:
        live = list(plan.live_cells())
        cell_frontiers = flat.frontiers_for([cell.predicate for _, cell in live])
        for (index, cell), flat_frontier in zip(live, cell_frontiers):
            if flat.frontier_count(flat_frontier) > 0:
                surviving.append((index, cell, flat_frontier))
    else:
        for index, cell in plan.live_cells():
            frontier = synopsis.tree.minimal_coverage_frontier(cell.predicate)
            if frontier_count(frontier) > 0:
                surviving.append((index, cell, frontier))

    if classic_slots:
        items = [(cell.predicate, frontier) for _, cell, frontier in surviving]
        moments = (
            flat.grouped_leaf_moments(items, need_extrema)
            if flat is not None
            else _grouped_leaf_moments(synopsis, items, value_column, need_extrema)
        )
    else:
        moments = {}

    classic_aggs = tuple(plan.aggregates[i].agg for i in classic_slots)
    strata = synopsis.leaf_samples
    answers: dict[int, tuple[AQPResult, ...]] = {}
    for slot, (index, cell, frontier) in enumerate(surviving):
        row: list[AQPResult | None] = [None] * len(plan.aggregates)
        if classic_slots:
            if flat is not None:
                classic_row = flat.assemble_cell_row(
                    classic_aggs, frontier, moments, slot, lam, with_fpc, population
                )
            else:
                classic_row = _assemble_cell_row(
                    classic_aggs, frontier, moments, slot, lam, with_fpc, population
                )
            for position, result in zip(classic_slots, classic_row):
                row[position] = result
        # One union per sketch kind per cell: the reduction depends only on
        # the predicate, so p50/p95/p99 specs share a single QuantileSketch
        # merge pass and differ only in result assembly; the partial-leaf
        # sample masks are likewise evaluated once per cell and shared by
        # the quantile and distinct unions.
        if sketch_slots:
            # Sketches reduce to per-leaf mergeable objects, so they stay on
            # the object path; the flat frontier is materialized to node
            # tuples once per cell.
            object_frontier = (
                flat.materialize(frontier) if flat is not None else frontier
            )
            mask_query = plan.cell_query(cell, plan.aggregates[sketch_slots[0]])
            cell_masks = {
                node.leaf_index: strata[node.leaf_index].match_mask(mask_query)
                for node in object_frontier.partial
                if strata[node.leaf_index].sample_size
            }
            cell_unions: dict[AggregateType, object] = {}
            for position in sketch_slots:
                spec = plan.aggregates[position]
                query = plan.cell_query(cell, spec)
                union = cell_unions.get(spec.agg)
                if union is None:
                    union = synopsis.sketch_union(
                        query, frontier=object_frontier, match_masks=cell_masks
                    )
                    cell_unions[spec.agg] = union
                row[position] = sketch_union_result(query, union, population)
        answers[index] = tuple(row)

    empty = tuple(empty_group_result(spec.agg, population) for spec in plan.aggregates)
    return GroupedResult(
        group_columns=plan.group_columns,
        aggregates=plan.aggregates,
        labels=tuple(cell.labels for cell in plan.cells),
        cells=tuple(answers.get(index, empty) for index in range(plan.n_cells)),
    )


def _grouped_leaf_moments(
    synopsis: PASSSynopsis,
    items: Sequence[tuple[RectPredicate, MCFResult]],
    value_column: str,
    need_extrema: bool,
) -> dict[tuple[int, int], _LeafMoments | None]:
    """Per-(predicate slot, leaf) masked-sample moments, one matrix pass per leaf.

    ``items`` holds one ``(predicate, frontier)`` pair per slot.  ``None``
    marks an unsampled leaf (the caller falls back to the hard-bound
    midpoint, exactly like the sequential estimator).
    """
    per_leaf: dict[int, list[int]] = {}
    for slot, (_, frontier) in enumerate(items):
        for node in frontier.partial:
            per_leaf.setdefault(node.leaf_index, []).append(slot)

    moments: dict[tuple[int, int], _LeafMoments | None] = {}
    strata = synopsis.leaf_samples
    for leaf_index, slots in per_leaf.items():
        stratum = strata[leaf_index]
        n_samples = stratum.sample_size
        if n_samples == 0:
            for slot in slots:
                moments[(slot, leaf_index)] = None
            continue
        matrix = np.ones((len(slots), n_samples), dtype=bool)
        columns: dict[str, None] = {}
        for slot in slots:
            for column, _, _ in items[slot][0].canonical_key():
                columns.setdefault(column, None)
        for column in columns:
            values = stratum.sample_columns[column]
            intervals = [items[slot][0].interval(column) for slot in slots]
            lows = np.array([interval.low for interval in intervals])
            highs = np.array([interval.high for interval in intervals])
            matrix &= (values[None, :] >= lows[:, None]) & (
                values[None, :] <= highs[:, None]
            )
        sample_values = stratum.sample_values(value_column)
        matched = matrix.sum(axis=1)
        sums = matrix @ sample_values
        sums_sq = matrix @ (sample_values * sample_values)
        if need_extrema:
            minima = np.where(matrix, sample_values[None, :], np.inf).min(axis=1)
            maxima = np.where(matrix, sample_values[None, :], -np.inf).max(axis=1)
        else:
            minima = maxima = np.zeros(len(slots))
        for row, slot in enumerate(slots):
            moments[(slot, leaf_index)] = (
                int(matched[row]),
                float(sums[row]),
                float(sums_sq[row]),
                float(minima[row]),
                float(maxima[row]),
                float(n_samples),
            )
    return moments


def _stratified_total(
    agg: AggregateType,
    frontier: MCFResult,
    cell_moments: Sequence[_LeafMoments | None],
    with_fpc: bool,
) -> tuple[float, float]:
    """Assembled SUM / COUNT estimate and variance from per-leaf moments.

    Mirrors ``PASSSynopsis._sum_count_estimate``: covered nodes contribute
    exactly, sampled partial leaves contribute ``N_i * mean(phi)`` with
    variance ``N_i^2 * var(phi) / K_i``, and unsampled partial leaves fall
    back to the hard-bound midpoint with unknown (NaN) variance.
    ``cell_moments`` aligns with ``frontier.partial``.
    """
    is_sum = agg == AggregateType.SUM
    estimate = sum(
        node.stats.sum if is_sum else float(node.stats.count)
        for node in frontier.covered
    )
    variance = 0.0
    for node, data in zip(frontier.partial, cell_moments):
        if node.size == 0:
            continue
        if data is None:
            stats = node.stats
            estimate += 0.5 * (stats.sum if is_sum else stats.count)
            variance = float("nan")
            continue
        matched, sums, sums_sq, _, _, n_samples = data
        if is_sum:
            mean = sums / n_samples
            mean_sq = sums_sq / n_samples
        else:
            mean = matched / n_samples
            mean_sq = mean
        sample_variance = max(mean_sq - mean * mean, 0.0) if n_samples > 1 else 0.0
        estimate += node.size * mean
        contribution = node.size * node.size * sample_variance / n_samples
        if with_fpc:
            contribution *= finite_population_correction(node.size, int(n_samples))
        variance += contribution
    return estimate, variance


def _assemble_cell_row(
    aggs: Sequence[AggregateType],
    frontier: MCFResult,
    moments,
    slot: int,
    lam: float,
    with_fpc: bool,
    population: int,
) -> tuple[AQPResult, ...]:
    """One cell's per-aggregate answers from its frontier and moments.

    The per-cell invariants (partial node list, processed / skipped counts,
    the SUM and COUNT totals that AVG shares) are computed once for the whole
    aggregate list.
    """
    covered_stats = [node.stats for node in frontier.covered]
    partial_nodes = list(frontier.partial)
    partial_stats = [node.stats for node in partial_nodes]
    cell_moments = [moments[(slot, node.leaf_index)] for node in partial_nodes]
    processed = sum(int(data[5]) for data in cell_moments if data is not None)
    skipped = population - sum(node.size for node in partial_nodes)
    exact = frontier.is_exact
    totals: dict[AggregateType, tuple[float, float]] = {}

    def total(agg: AggregateType) -> tuple[float, float]:
        if agg not in totals:
            totals[agg] = _stratified_total(agg, frontier, cell_moments, with_fpc)
        return totals[agg]

    row = []
    for agg in aggs:
        bounds = hard_bounds(agg, covered_stats, partial_stats)
        if agg in (AggregateType.MIN, AggregateType.MAX):
            is_max = agg == AggregateType.MAX
            candidates = []
            for node in frontier.covered:
                value = node.stats.max if is_max else node.stats.min
                if not math.isinf(value):
                    candidates.append(value)
            for node, data in zip(partial_nodes, cell_moments):
                if data is not None and data[0] > 0:
                    candidates.append(data[4] if is_max else data[3])
            estimate = (
                (max(candidates) if is_max else min(candidates))
                if candidates
                else float("nan")
            )
            row.append(
                AQPResult(
                    estimate=estimate,
                    ci_half_width=0.0 if exact else float("nan"),
                    variance=0.0 if exact else float("nan"),
                    hard_lower=bounds.lower,
                    hard_upper=bounds.upper,
                    tuples_processed=processed,
                    tuples_skipped=skipped,
                    exact=exact,
                )
            )
            continue

        if agg == AggregateType.AVG:
            num, num_var = total(AggregateType.SUM)
            den, den_var = total(AggregateType.COUNT)
            if den == 0:
                estimate, variance = float("nan"), float("nan")
            elif exact:
                estimate, variance = num / den, 0.0
            else:
                combined = ratio_estimate(
                    EstimateWithVariance(num, num_var),
                    EstimateWithVariance(den, den_var),
                )
                estimate, variance = combined.estimate, combined.variance
        else:
            estimate, variance = total(agg)

        if exact:
            half_width, variance = 0.0, 0.0
        elif math.isnan(variance):
            half_width = float("nan")
        else:
            half_width = lam * math.sqrt(max(variance, 0.0))
        row.append(
            AQPResult(
                estimate=estimate,
                ci_half_width=half_width,
                variance=variance,
                hard_lower=bounds.lower,
                hard_upper=bounds.upper,
                tuples_processed=processed,
                tuples_skipped=skipped,
                exact=exact,
            )
        )
    return tuple(row)
