"""Vectorized batch query execution against one PASS synopsis.

Answering a batch of queries one by one re-evaluates the predicate of every
query against every partially-overlapped leaf's sample columns.  When many
queries touch the same leaf — the normal case for dashboard traffic and for
scatter-gather over shards — those per-query mask evaluations can be fused:
for each leaf, the interval tests of all queries touching it (grouped by
constrained-column set) are evaluated in one broadcasted comparison.

The fused masks are then fed through the regular estimator path
(:meth:`repro.core.pass_synopsis.PASSSynopsis.query` accepts precomputed
masks), so batched results are identical to sequential ones by construction.
Both the serving engine's ``execute_batch`` and the distributed layer's
scatter-gather path build on :func:`batch_query`.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.pass_synopsis import PASSSynopsis
from repro.core.tree import MCFResult
from repro.query.query import AggregateQuery
from repro.result import AQPResult

__all__ = ["batch_query", "batch_leaf_masks"]


def batch_query(
    synopsis: PASSSynopsis, queries: Sequence[AggregateQuery]
) -> list[AQPResult]:
    """Answer several queries against one synopsis with shared mask work.

    Results align with the input order and are identical to calling
    ``synopsis.query(query)`` per query.
    """
    frontiers = [synopsis.lookup(query) for query in queries]
    masks = batch_leaf_masks(synopsis, queries, frontiers)
    return [
        synopsis.query(query, match_masks=mask, frontier=frontier)
        for query, mask, frontier in zip(queries, masks, frontiers)
    ]


def batch_leaf_masks(
    synopsis: PASSSynopsis,
    queries: Sequence[AggregateQuery],
    frontiers: Sequence[MCFResult],
) -> list[dict[int, np.ndarray]]:
    """Vectorized sample match masks for a batch of queries.

    For every leaf partially overlapped by at least one query, the interval
    tests of all queries touching that leaf (grouped by constrained-column
    set) are evaluated against the leaf's sample columns in one broadcasted
    comparison, instead of once per query.  Each mask row equals what
    ``Stratum.match_mask`` computes for the same query, so feeding the masks
    through ``PASSSynopsis.query`` yields identical results.
    """
    per_leaf: dict[int, list[int]] = {}
    for index, frontier in enumerate(frontiers):
        for node in frontier.partial:
            per_leaf.setdefault(node.leaf_index, []).append(index)

    masks: list[dict[int, np.ndarray]] = [{} for _ in queries]
    strata = synopsis.leaf_samples
    for leaf_index, members in per_leaf.items():
        stratum = strata[leaf_index]
        n_samples = stratum.sample_size
        if n_samples == 0:
            empty = np.zeros(0, dtype=bool)
            for index in members:
                masks[index][leaf_index] = empty
            continue
        groups: dict[tuple[str, ...], list[int]] = {}
        for index in members:
            columns = tuple(
                column for column, _, _ in queries[index].predicate.canonical_key()
            )
            groups.setdefault(columns, []).append(index)
        for columns, group in groups.items():
            if not columns:
                for index in group:
                    masks[index][leaf_index] = np.ones(n_samples, dtype=bool)
                continue
            matrix = np.ones((len(group), n_samples), dtype=bool)
            for column in columns:
                values = stratum.sample_columns[column]
                lows = np.array(
                    [queries[index].predicate.interval(column).low for index in group]
                )
                highs = np.array(
                    [queries[index].predicate.interval(column).high for index in group]
                )
                matrix &= (values[None, :] >= lows[:, None]) & (
                    values[None, :] <= highs[:, None]
                )
            for row, index in enumerate(group):
                masks[index][leaf_index] = matrix[row]
    return masks
