"""Vectorized batch and grouped query execution against one PASS synopsis.

Answering a batch of queries one by one re-evaluates the predicate of every
query against every partially-overlapped leaf's sample columns.  When many
queries touch the same leaf — the normal case for dashboard traffic, grouped
aggregation, and scatter-gather over shards — those per-query mask
evaluations can be fused:

* queries with *identical* predicates (a SUM / COUNT / AVG triple over one
  region, or the aggregates of one group cell) share a single mask per leaf,
  and
* the remaining distinct predicates touching a leaf (grouped by
  constrained-column set) are evaluated in one broadcasted comparison.

The fused masks are then fed through the regular estimator path
(:meth:`repro.core.pass_synopsis.PASSSynopsis.query` accepts precomputed
masks), so batched results are identical to sequential ones by construction.
The serving engine's ``execute_batch``, the distributed layer's
scatter-gather path, and the grouped executor below all build on
:func:`batch_query` / :func:`batch_leaf_masks`.

:func:`grouped_query` is the single-synopsis executor for compiled
:class:`~repro.query.groupby.GroupByPlan` batches.  It exploits the grouped
shape beyond what :func:`batch_query` can see: one MCF frontier per group
cell is shared by every aggregate of the cell (a G-cell, A-aggregate query
costs G index lookups and G mask passes rather than G x A), and cells whose
frontier statistics show zero matching tuples are answered as empty without
dispatching anything.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.aggregation.strat_agg import hard_bounds
from repro.core.pass_synopsis import PASSSynopsis, sketch_union_result
from repro.core.tree import MCFResult
from repro.query.aggregates import SKETCH_AGGREGATES, AggregateType
from repro.query.groupby import (
    GroupByPlan,
    GroupedResult,
    empty_group_result,
)
from repro.query.query import AggregateQuery
from repro.result import AQPResult
from repro.sampling.estimators import (
    EstimateWithVariance,
    finite_population_correction,
    ratio_estimate,
)

__all__ = ["batch_query", "batch_leaf_masks", "grouped_query", "frontier_count"]


def batch_query(
    synopsis: PASSSynopsis, queries: Sequence[AggregateQuery]
) -> list[AQPResult]:
    """Answer several queries against one synopsis with shared mask work.

    Results align with the input order and are identical to calling
    ``synopsis.query(query)`` per query.
    """
    frontiers = [synopsis.lookup(query) for query in queries]
    masks = batch_leaf_masks(synopsis, queries, frontiers)
    return [
        synopsis.query(query, match_masks=mask, frontier=frontier)
        for query, mask, frontier in zip(queries, masks, frontiers)
    ]


def batch_leaf_masks(
    synopsis: PASSSynopsis,
    queries: Sequence[AggregateQuery],
    frontiers: Sequence[MCFResult],
) -> list[dict[int, np.ndarray]]:
    """Vectorized sample match masks for a batch of queries.

    For every leaf partially overlapped by at least one query, the interval
    tests of the *distinct* predicates touching that leaf (queries with equal
    canonical predicates share one mask row, grouped by constrained-column
    set for broadcasting) are evaluated against the leaf's sample columns in
    one comparison, instead of once per query.  Each mask row equals what
    ``Stratum.match_mask`` computes for the same query, so feeding the masks
    through ``PASSSynopsis.query`` yields identical results.
    """
    predicate_keys = [query.predicate.canonical_key() for query in queries]
    per_leaf: dict[int, list[int]] = {}
    for index, frontier in enumerate(frontiers):
        for node in frontier.partial:
            per_leaf.setdefault(node.leaf_index, []).append(index)

    masks: list[dict[int, np.ndarray]] = [{} for _ in queries]
    strata = synopsis.leaf_samples
    for leaf_index, members in per_leaf.items():
        stratum = strata[leaf_index]
        n_samples = stratum.sample_size
        if n_samples == 0:
            empty = np.zeros(0, dtype=bool)
            for index in members:
                masks[index][leaf_index] = empty
            continue
        # One mask per distinct predicate; duplicates share the array.
        unique: dict[tuple, list[int]] = {}
        for index in members:
            unique.setdefault(predicate_keys[index], []).append(index)
        groups: dict[tuple[str, ...], list[tuple]] = {}
        for key in unique:
            columns = tuple(column for column, _, _ in key)
            groups.setdefault(columns, []).append(key)
        for columns, keys in groups.items():
            if not columns:
                everything = np.ones(n_samples, dtype=bool)
                for key in keys:
                    for index in unique[key]:
                        masks[index][leaf_index] = everything
                continue
            matrix = np.ones((len(keys), n_samples), dtype=bool)
            bounds = {
                column: np.array(
                    [
                        [low, high]
                        for key in keys
                        for k_column, low, high in key
                        if k_column == column
                    ]
                )
                for column in columns
            }
            for column in columns:
                values = stratum.sample_columns[column]
                lows = bounds[column][:, 0]
                highs = bounds[column][:, 1]
                matrix &= (values[None, :] >= lows[:, None]) & (
                    values[None, :] <= highs[:, None]
                )
            for row, key in enumerate(keys):
                shared = matrix[row]
                for index in unique[key]:
                    masks[index][leaf_index] = shared
    return masks


def frontier_count(frontier: MCFResult) -> int:
    """Number of dataset tuples inside a frontier's covered + partial nodes.

    This is an upper bound on how many tuples a query over the frontier's
    predicate can match, read entirely from precomputed partition statistics
    — zero means the predicate region is provably empty.
    """
    return sum(node.stats.count for node in frontier.covered) + sum(
        node.stats.count for node in frontier.partial
    )


#: Per-cell, per-leaf sufficient statistics of the masked sample: the number
#: of matching samples, their value sum and sum of squares, and (when an
#: extremum aggregate asked for them) their min / max.
_LeafMoments = tuple[int, float, float, float, float, float]


def grouped_query(
    synopsis: PASSSynopsis, plan: GroupByPlan, lam: float | None = None
) -> GroupedResult:
    """Answer a compiled group-by plan with vectorized grouped execution.

    The executor exploits the grouped shape beyond what :func:`batch_query`
    can see:

    * one MCF lookup per group cell is shared by every aggregate of the cell
      (G lookups instead of G x A);
    * cells whose frontier statistics show zero matching tuples are answered
      as exact empty groups without touching any sample;
    * per partially-overlapped leaf, the match masks of every cell touching
      it are evaluated in one broadcasted comparison and immediately reduced
      to sufficient statistics (matched count, value sum, sum of squares,
      extrema) with matrix products, so no per-(cell, aggregate) pass over
      sample values remains — SUM / COUNT / AVG / MIN / MAX all assemble
      from the same per-(cell, leaf) moments.

    Estimates, variances, and bounds follow the exact same stratified
    formulas as ``synopsis.query`` and agree with sequential execution up to
    floating-point summation order.  The one semantic difference: AVG reuses
    the cell's shared frontier, skipping the AVG-only zero-variance shortcut
    (Section 3.4) — answers stay valid and only partially-overlapped
    constant-valued partitions would ever notice.

    Sketch aggregates (QUANTILE / COUNT_DISTINCT) ride the same per-cell
    frontier: each surviving cell reduces to its mergeable sketch union
    (:meth:`PASSSynopsis.sketch_union`) over the frontier already computed
    for the classic aggregates, so a mixed plan still costs one index lookup
    per cell and the sketch answers equal sequential ``synopsis.query``
    execution exactly.
    """
    lam = synopsis.lam if lam is None else lam
    with_fpc = synopsis.with_fpc
    value_column = synopsis.value_column
    for spec in plan.aggregates:
        if spec.value_column != value_column:
            raise ValueError(
                f"synopsis was built for column {value_column!r}, "
                f"aggregate targets {spec.value_column!r}"
            )
    classic_slots = [
        i for i, spec in enumerate(plan.aggregates) if spec.agg not in SKETCH_AGGREGATES
    ]
    sketch_slots = [
        i for i, spec in enumerate(plan.aggregates) if spec.agg in SKETCH_AGGREGATES
    ]
    if sketch_slots and not synopsis.has_sketches:
        raise ValueError(
            "synopsis was built without sketches and cannot answer "
            "QUANTILE / COUNT_DISTINCT aggregates; rebuild with "
            "PASSConfig(with_sketches=True)"
        )
    population = synopsis.population_size
    need_extrema = any(
        plan.aggregates[i].agg in (AggregateType.MIN, AggregateType.MAX)
        for i in classic_slots
    )

    surviving: list[tuple[int, "object", MCFResult]] = []
    for index, cell in plan.live_cells():
        frontier = synopsis.tree.minimal_coverage_frontier(cell.predicate)
        if frontier_count(frontier) > 0:
            surviving.append((index, cell, frontier))

    moments = (
        _grouped_leaf_moments(synopsis, surviving, value_column, need_extrema)
        if classic_slots
        else {}
    )

    classic_aggs = tuple(plan.aggregates[i].agg for i in classic_slots)
    strata = synopsis.leaf_samples
    answers: dict[int, tuple[AQPResult, ...]] = {}
    for slot, (index, cell, frontier) in enumerate(surviving):
        row: list[AQPResult | None] = [None] * len(plan.aggregates)
        if classic_slots:
            classic_row = _assemble_cell_row(
                classic_aggs, frontier, moments, slot, lam, with_fpc, population
            )
            for position, result in zip(classic_slots, classic_row):
                row[position] = result
        # One union per sketch kind per cell: the reduction depends only on
        # the predicate, so p50/p95/p99 specs share a single QuantileSketch
        # merge pass and differ only in result assembly; the partial-leaf
        # sample masks are likewise evaluated once per cell and shared by
        # the quantile and distinct unions.
        if sketch_slots:
            mask_query = plan.cell_query(cell, plan.aggregates[sketch_slots[0]])
            cell_masks = {
                node.leaf_index: strata[node.leaf_index].match_mask(mask_query)
                for node in frontier.partial
                if strata[node.leaf_index].sample_size
            }
            cell_unions: dict[AggregateType, object] = {}
            for position in sketch_slots:
                spec = plan.aggregates[position]
                query = plan.cell_query(cell, spec)
                union = cell_unions.get(spec.agg)
                if union is None:
                    union = synopsis.sketch_union(
                        query, frontier=frontier, match_masks=cell_masks
                    )
                    cell_unions[spec.agg] = union
                row[position] = sketch_union_result(query, union, population)
        answers[index] = tuple(row)

    empty = tuple(empty_group_result(spec.agg, population) for spec in plan.aggregates)
    return GroupedResult(
        group_columns=plan.group_columns,
        aggregates=plan.aggregates,
        labels=tuple(cell.labels for cell in plan.cells),
        cells=tuple(answers.get(index, empty) for index in range(plan.n_cells)),
    )


def _grouped_leaf_moments(
    synopsis: PASSSynopsis,
    surviving: Sequence[tuple],
    value_column: str,
    need_extrema: bool,
) -> dict[tuple[int, int], _LeafMoments | None]:
    """Per-(cell slot, leaf) masked-sample moments, one matrix pass per leaf.

    ``None`` marks an unsampled leaf (the caller falls back to the hard-bound
    midpoint, exactly like the sequential estimator).
    """
    per_leaf: dict[int, list[int]] = {}
    for slot, (_, _, frontier) in enumerate(surviving):
        for node in frontier.partial:
            per_leaf.setdefault(node.leaf_index, []).append(slot)

    moments: dict[tuple[int, int], _LeafMoments | None] = {}
    strata = synopsis.leaf_samples
    for leaf_index, slots in per_leaf.items():
        stratum = strata[leaf_index]
        n_samples = stratum.sample_size
        if n_samples == 0:
            for slot in slots:
                moments[(slot, leaf_index)] = None
            continue
        matrix = np.ones((len(slots), n_samples), dtype=bool)
        columns: dict[str, None] = {}
        for slot in slots:
            for column, _, _ in surviving[slot][1].predicate.canonical_key():
                columns.setdefault(column, None)
        for column in columns:
            values = stratum.sample_columns[column]
            intervals = [
                surviving[slot][1].predicate.interval(column) for slot in slots
            ]
            lows = np.array([interval.low for interval in intervals])
            highs = np.array([interval.high for interval in intervals])
            matrix &= (values[None, :] >= lows[:, None]) & (
                values[None, :] <= highs[:, None]
            )
        sample_values = stratum.sample_values(value_column)
        matched = matrix.sum(axis=1)
        sums = matrix @ sample_values
        sums_sq = matrix @ (sample_values * sample_values)
        if need_extrema:
            minima = np.where(matrix, sample_values[None, :], np.inf).min(axis=1)
            maxima = np.where(matrix, sample_values[None, :], -np.inf).max(axis=1)
        else:
            minima = maxima = np.zeros(len(slots))
        for row, slot in enumerate(slots):
            moments[(slot, leaf_index)] = (
                int(matched[row]),
                float(sums[row]),
                float(sums_sq[row]),
                float(minima[row]),
                float(maxima[row]),
                float(n_samples),
            )
    return moments


def _stratified_total(
    agg: AggregateType,
    frontier: MCFResult,
    cell_moments: Sequence[_LeafMoments | None],
    with_fpc: bool,
) -> tuple[float, float]:
    """Assembled SUM / COUNT estimate and variance from per-leaf moments.

    Mirrors ``PASSSynopsis._sum_count_estimate``: covered nodes contribute
    exactly, sampled partial leaves contribute ``N_i * mean(phi)`` with
    variance ``N_i^2 * var(phi) / K_i``, and unsampled partial leaves fall
    back to the hard-bound midpoint with unknown (NaN) variance.
    ``cell_moments`` aligns with ``frontier.partial``.
    """
    is_sum = agg == AggregateType.SUM
    estimate = sum(
        node.stats.sum if is_sum else float(node.stats.count)
        for node in frontier.covered
    )
    variance = 0.0
    for node, data in zip(frontier.partial, cell_moments):
        if node.size == 0:
            continue
        if data is None:
            stats = node.stats
            estimate += 0.5 * (stats.sum if is_sum else stats.count)
            variance = float("nan")
            continue
        matched, sums, sums_sq, _, _, n_samples = data
        if is_sum:
            mean = sums / n_samples
            mean_sq = sums_sq / n_samples
        else:
            mean = matched / n_samples
            mean_sq = mean
        sample_variance = max(mean_sq - mean * mean, 0.0) if n_samples > 1 else 0.0
        estimate += node.size * mean
        contribution = node.size * node.size * sample_variance / n_samples
        if with_fpc:
            contribution *= finite_population_correction(node.size, int(n_samples))
        variance += contribution
    return estimate, variance


def _assemble_cell_row(
    aggs: Sequence[AggregateType],
    frontier: MCFResult,
    moments,
    slot: int,
    lam: float,
    with_fpc: bool,
    population: int,
) -> tuple[AQPResult, ...]:
    """One cell's per-aggregate answers from its frontier and moments.

    The per-cell invariants (partial node list, processed / skipped counts,
    the SUM and COUNT totals that AVG shares) are computed once for the whole
    aggregate list.
    """
    covered_stats = [node.stats for node in frontier.covered]
    partial_nodes = list(frontier.partial)
    partial_stats = [node.stats for node in partial_nodes]
    cell_moments = [moments[(slot, node.leaf_index)] for node in partial_nodes]
    processed = sum(int(data[5]) for data in cell_moments if data is not None)
    skipped = population - sum(node.size for node in partial_nodes)
    exact = frontier.is_exact
    totals: dict[AggregateType, tuple[float, float]] = {}

    def total(agg: AggregateType) -> tuple[float, float]:
        if agg not in totals:
            totals[agg] = _stratified_total(agg, frontier, cell_moments, with_fpc)
        return totals[agg]

    row = []
    for agg in aggs:
        bounds = hard_bounds(agg, covered_stats, partial_stats)
        if agg in (AggregateType.MIN, AggregateType.MAX):
            is_max = agg == AggregateType.MAX
            candidates = []
            for node in frontier.covered:
                value = node.stats.max if is_max else node.stats.min
                if not math.isinf(value):
                    candidates.append(value)
            for node, data in zip(partial_nodes, cell_moments):
                if data is not None and data[0] > 0:
                    candidates.append(data[4] if is_max else data[3])
            estimate = (
                (max(candidates) if is_max else min(candidates))
                if candidates
                else float("nan")
            )
            row.append(
                AQPResult(
                    estimate=estimate,
                    ci_half_width=0.0 if exact else float("nan"),
                    variance=0.0 if exact else float("nan"),
                    hard_lower=bounds.lower,
                    hard_upper=bounds.upper,
                    tuples_processed=processed,
                    tuples_skipped=skipped,
                    exact=exact,
                )
            )
            continue

        if agg == AggregateType.AVG:
            num, num_var = total(AggregateType.SUM)
            den, den_var = total(AggregateType.COUNT)
            if den == 0:
                estimate, variance = float("nan"), float("nan")
            elif exact:
                estimate, variance = num / den, 0.0
            else:
                combined = ratio_estimate(
                    EstimateWithVariance(num, num_var),
                    EstimateWithVariance(den, den_var),
                )
                estimate, variance = combined.estimate, combined.variance
        else:
            estimate, variance = total(agg)

        if exact:
            half_width, variance = 0.0, 0.0
        elif math.isnan(variance):
            half_width = float("nan")
        else:
            half_width = lam * math.sqrt(max(variance, 0.0))
        row.append(
            AQPResult(
                estimate=estimate,
                ci_half_width=half_width,
                variance=variance,
                hard_lower=bounds.lower,
                hard_upper=bounds.upper,
                tuples_processed=processed,
                tuples_skipped=skipped,
                exact=exact,
            )
        )
    return tuple(row)
