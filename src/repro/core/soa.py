"""Array-native (structure-of-arrays) execution core for the PASS synopsis.

The object execution path answers a query by walking ``PartitionNode``
objects and touching one Python ``Stratum`` per partially-overlapped leaf;
profiling shows that per-node/per-leaf Python dispatch — not arithmetic —
dominates single-query latency.  This module re-hosts the synopsis state in
a handful of contiguous arrays (:class:`FlatSynopsis`) and rewrites the hot
kernels (frontier descent, predicate mask evaluation, moment reductions) to
run over those arrays with zero Python-object traversal.

Layout (specified normatively in ``docs/ARCHITECTURE.md``):

* **Node order** — every per-node array is indexed by the tree's *geometry
  order*: the DFS stack-pop order of ``PartitionTree.minimal_coverage_
  frontier`` (root first, children pushed left-to-right and popped in
  reverse).  Ascending row order therefore *is* the object path's visit
  order, which is what makes frontier extraction order-preserving.
* **Stats** — ``node_sum`` / ``node_min`` / ``node_max`` (float64) and
  ``node_count`` (int64, with a float64 mirror for matmul consumers),
  kept in sync with the object tree by :meth:`FlatSynopsis.
  update_node_stats`.
* **Bounds** — one contiguous float64 low/high array *per predicate
  column* (±inf where a node's box does not constrain the column).
* **Samples** — CSR: ``offsets`` (int64, ``n_leaves + 1``) into one
  concatenated float64 array per sample column; leaf ``i`` owns
  ``column[offsets[i]:offsets[i + 1]]``.

Equivalence contract: with the same synopsis state, every answer produced
here is **bit-identical** to the object path — same covered/partial order,
same floating-point summation order, same ``nodes_visited`` — enforced by
the property suite in ``tests/test_soa_equivalence.py``.  The object path
(``PASSSynopsis.query_object``) remains the oracle behind the
``execution="object"`` switch.

The frontier uses a closed form instead of replaying the descent: box
nesting means a predicate that covers (or misses) a node also covers
(misses) all of its descendants, so — absent zero-variance stops — a node
is *visited* iff its parent is partially overlapped, making the MCF
``covered = cover & partial[parent]`` and ``partial = partial & is_leaf``
with no level-by-level loop.  When the AVG zero-variance rule could stop
the descent early (some partially-overlapped node has ``min == max``), the
code falls back to the exact level-order replay of
``PartitionTree.batch_coverage_frontiers``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.aggregation.strat_agg import HardBounds
from repro.core.tree import MCFResult
from repro.query.aggregates import SKETCH_AGGREGATES, AggregateType
from repro.query.predicate import RectPredicate
from repro.query.query import AggregateQuery
from repro.result import AQPResult
from repro.sampling.estimators import (
    EstimateWithVariance,
    finite_population_correction,
    ratio_estimate,
)
from repro.sampling.stratified import Stratum

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.pass_synopsis import PASSSynopsis

__all__ = ["FlatFrontier", "FlatSamples", "FlatSynopsis"]

#: Per-(cell, leaf) masked-sample sufficient statistics, identical in shape
#: and construction to ``repro.core.batching._LeafMoments``.
_LeafMoments = tuple[int, float, float, float, float, float]


def _fast_mean(values: np.ndarray) -> float:
    """``float(values.mean())`` without the ``np.mean`` dispatch overhead.

    ``ndarray.mean`` reduces with ``umr_sum`` — the very ufunc reachable as
    ``np.add.reduce`` (same pairwise summation) — then divides by the count,
    so this replica is bit-identical while skipping ~10µs of numpy dispatch
    per call.  The caller guarantees ``values`` is non-empty float64.
    """
    return float(np.add.reduce(values) / values.shape[0])


def _fast_var(values: np.ndarray) -> float:
    """``float(np.var(values))`` (ddof=0) as raw ufunc calls, bit-identical.

    Mirrors numpy's ``_var``: mean via ``umr_sum / n``, squared deviations
    in place, reduced by the same pairwise sum.  The caller guarantees at
    least two float64 elements.  ``values`` is not modified.
    """
    n = values.shape[0]
    mean = np.add.reduce(values) / n
    deviations = values - mean
    np.multiply(deviations, deviations, out=deviations)
    return float(np.add.reduce(deviations) / n)


def _sum_contribution(
    values: np.ndarray, mask: np.ndarray, size: int, with_fpc: bool
) -> tuple[float, float]:
    """One partial leaf's SUM contribution ``(estimate, variance)``.

    Bit-identical replica of
    :func:`repro.sampling.estimators.stratum_sum_contribution` minus the
    defensive ``asarray`` casts (inputs are CSR float64 slices already).
    The caller guarantees a non-empty sample.
    """
    sample_size = values.shape[0]
    contributions = mask.astype(float)
    np.multiply(contributions, values, out=contributions)
    estimate = _fast_mean(contributions) * size
    if sample_size <= 1:
        sample_variance = 0.0
    else:
        sample_variance = _fast_var(contributions)
    variance = (size**2) * sample_variance / sample_size
    if with_fpc:
        variance *= finite_population_correction(size, sample_size)
    return estimate, variance


def _count_contribution(
    mask: np.ndarray, size: int, with_fpc: bool
) -> tuple[float, float]:
    """One partial leaf's COUNT contribution ``(estimate, variance)``.

    Bit-identical replica of
    :func:`repro.sampling.estimators.stratum_count_contribution` for a
    non-empty sample.
    """
    sample_size = mask.shape[0]
    indicator = mask.astype(float)
    estimate = _fast_mean(indicator) * size
    if sample_size <= 1:
        sample_variance = 0.0
    else:
        sample_variance = _fast_var(indicator)
    variance = (size**2) * sample_variance / sample_size
    if with_fpc:
        variance *= finite_population_correction(size, sample_size)
    return estimate, variance


@dataclass(frozen=True)
class _ExternalGeometry:
    """Bound-array stand-in for ``_TreeGeometry`` on buffer-backed instances.

    Carries only what the flat kernels read — the per-node bound matrices —
    as transposed views of the externally owned column-major buffers.  There
    are no node objects behind an external instance, so ``nodes`` stays
    empty and :meth:`FlatSynopsis.materialize` is unavailable.
    """

    lows: np.ndarray
    highs: np.ndarray
    nodes: tuple = ()


@dataclass(frozen=True)
class FlatFrontier:
    """An MCF result as geometry-order node rows instead of node objects.

    ``covered`` / ``partial`` hold ascending node-row indices; because
    geometry order equals the object descent's visit order, iterating them
    reproduces the object path's covered/partial order exactly.
    """

    covered: np.ndarray
    partial: np.ndarray
    nodes_visited: int

    @property
    def is_exact(self) -> bool:
        """True when no partially-overlapped leaf remains (exact answer)."""
        return self.partial.shape[0] == 0


@dataclass
class FlatSamples:
    """CSR leaf samples: per-column concatenated values plus row offsets.

    ``offsets`` has ``n_leaves + 1`` entries; leaf ``i``'s sample occupies
    ``columns[c][offsets[i]:offsets[i + 1]]`` for every sample column
    ``c``.  Offsets are *compact* (no slack): a same-length reservoir swap
    writes in place, a length-changing one marks the structure stale for a
    lazy rebuild.
    """

    offsets: np.ndarray
    columns: dict[str, np.ndarray]


class FlatSynopsis:
    """Structure-of-arrays execution engine over a :class:`PASSSynopsis`.

    Built once from the object synopsis (the same encoding
    ``PASSSynopsis.to_arrays`` uses) and kept in sync through the
    :meth:`update_node_stats` / :meth:`replace_leaf_sample` hooks that
    ``PASSSynopsis`` and ``DynamicPASS`` call on every mutation.  All query
    entry points return answers bit-identical to the object path; see the
    module docstring for the contract.

    Parameters
    ----------
    synopsis:
        The owning object synopsis; tree geometry, statistics, and leaf
        samples are snapshotted into arrays at construction.
    """

    def __init__(self, synopsis: "PASSSynopsis") -> None:
        self._synopsis = synopsis
        self._value_column = synopsis.value_column
        self._lam = synopsis.lam
        self._zero_variance_rule = synopsis.zero_variance_rule
        self._with_fpc = synopsis.with_fpc

        geometry = synopsis.tree.geometry()
        self._geometry = geometry
        nodes = geometry.nodes
        n = len(nodes)
        self._n_nodes = n
        self._node_sum = np.fromiter(
            (node.stats.sum for node in nodes), dtype=float, count=n
        )
        self._node_count = np.fromiter(
            (node.stats.count for node in nodes), dtype=np.int64, count=n
        )
        self._node_count_f = self._node_count.astype(float)
        self._node_min = np.fromiter(
            (node.stats.min for node in nodes), dtype=float, count=n
        )
        self._node_max = np.fromiter(
            (node.stats.max for node in nodes), dtype=float, count=n
        )
        self._row_by_id = {id(node): row for row, node in enumerate(nodes)}
        self._zv_cache: np.ndarray | None = None

        self._parent = geometry.parent
        parent0 = geometry.parent.copy()
        parent0[0] = 0  # root "reaches" itself in the closed-form extraction
        self._parent0 = parent0
        self._is_leaf = geometry.is_leaf
        self._leaf_of_row = geometry.leaf_index
        self._levels = geometry.levels
        self._column_index = geometry.column_index
        self._col_lows = tuple(
            np.ascontiguousarray(geometry.lows[:, c])
            for c in range(len(geometry.column_index))
        )
        self._col_highs = tuple(
            np.ascontiguousarray(geometry.highs[:, c])
            for c in range(len(geometry.column_index))
        )

        self._samples: FlatSamples = self._build_samples()
        self._samples_stale = False

    # ------------------------------------------------------------------
    # Construction / synchronisation
    # ------------------------------------------------------------------
    def _build_samples(self) -> FlatSamples:
        """Snapshot the object strata into compact CSR arrays."""
        strata = self._synopsis.leaf_samples
        sizes = [stratum.sample_size for stratum in strata]
        offsets = np.zeros(len(strata) + 1, dtype=np.int64)
        np.cumsum(np.asarray(sizes, dtype=np.int64), out=offsets[1:])
        # Column set: insertion order of the first stratum, restricted to
        # columns every stratum carries (builders always produce a uniform
        # set; hand-assembled synopses may not).
        columns: dict[str, np.ndarray] = {}
        if strata:
            shared = [
                column
                for column in strata[0].sample_columns
                if all(column in stratum.sample_columns for stratum in strata)
            ]
            for column in shared:
                columns[column] = (
                    np.concatenate(
                        [
                            np.asarray(stratum.sample_columns[column], dtype=float)
                            for stratum in strata
                        ]
                    )
                    if int(offsets[-1])
                    else np.zeros(0, dtype=float)
                )
        self._sample_counts = np.diff(offsets)
        return FlatSamples(offsets=offsets, columns=columns)

    def _ensure_samples(self) -> FlatSamples:
        """The CSR samples, rebuilt lazily after a length-changing swap."""
        if self._samples_stale:
            self._samples = self._build_samples()
            self._samples_stale = False
        return self._samples

    def export_buffers(self) -> tuple[dict, dict[str, np.ndarray]]:
        """Export the execution state as ``(header, arrays)`` flat buffers.

        The returned arrays are exactly the contiguous buffers the query
        kernels read — node statistics, descent topology, column-major bound
        rows, and the CSR samples — so :meth:`from_buffers` over them (or
        over byte-identical copies, e.g. views into a shared-memory segment)
        reconstructs an engine whose answers are bit-identical to this one.
        The header carries the scalar configuration (value column, lambda,
        zero-variance rule, FPC flag) plus the ordered predicate-column and
        sample-column name lists that give the anonymous arrays meaning.

        Arrays holding live synced state (node stats) are snapshot copies,
        so later dynamic updates to this instance do not mutate the export.
        """
        samples = self._ensure_samples()
        n = self._n_nodes
        n_cols = len(self._column_index)
        depth = np.zeros(n, dtype=np.int64)
        for level_depth, level in enumerate(self._levels):
            depth[level] = level_depth
        col_lows = np.zeros((n_cols, n), dtype=float)
        col_highs = np.zeros((n_cols, n), dtype=float)
        for c in range(n_cols):
            col_lows[c] = self._col_lows[c]
            col_highs[c] = self._col_highs[c]
        header = {
            "value_column": self._value_column,
            "lam": float(self._lam),
            "zero_variance_rule": bool(self._zero_variance_rule),
            "with_fpc": bool(self._with_fpc),
            "columns": list(self._column_index),
            "sample_columns": list(samples.columns),
        }
        arrays: dict[str, np.ndarray] = {
            "node_sum": self._node_sum.copy(),
            "node_count": self._node_count.copy(),
            "node_count_f": self._node_count_f.copy(),
            "node_min": self._node_min.copy(),
            "node_max": self._node_max.copy(),
            "parent": np.ascontiguousarray(self._parent, dtype=np.int64),
            "parent0": np.ascontiguousarray(self._parent0, dtype=np.int64),
            "is_leaf": np.ascontiguousarray(self._is_leaf, dtype=bool),
            "leaf_of_row": np.ascontiguousarray(self._leaf_of_row, dtype=np.int64),
            "depth": depth,
            "col_lows": col_lows,
            "col_highs": col_highs,
            "sample_offsets": samples.offsets.copy(),
        }
        for column, values in samples.columns.items():
            arrays[f"sample/{column}"] = values.copy()
        return header, arrays

    @classmethod
    def from_buffers(
        cls, header: dict, arrays: dict[str, np.ndarray]
    ) -> "FlatSynopsis":
        """Build an execution engine over externally owned buffers, zero-copy.

        The inverse of :meth:`export_buffers`: every kernel array is taken
        *by reference* — no sample or statistic array is copied — so the
        caller can hand in views over a read-only shared-memory segment and
        serve queries without duplicating the synopsis in each process.
        Derived index structures (descent levels from the depth array,
        per-leaf sample counts from the CSR offsets) are the only
        allocations, both O(nodes).

        Buffer-backed instances are read-only query engines: there is no
        owning object synopsis behind them, so :meth:`materialize` raises
        and the mutation hooks (:meth:`update_node_stats`,
        :meth:`replace_leaf_sample`) must not be used — writers rebuild and
        republish a fresh segment instead (see
        :mod:`repro.serving.shm`).  Answers are bit-identical to the
        instance that exported the buffers.
        """
        self = cls.__new__(cls)
        self._synopsis = None  # type: ignore[assignment]
        self._value_column = str(header["value_column"])
        self._lam = float(header["lam"])
        self._zero_variance_rule = bool(header["zero_variance_rule"])
        self._with_fpc = bool(header["with_fpc"])

        node_sum = arrays["node_sum"]
        n = int(node_sum.shape[0])
        self._n_nodes = n
        self._node_sum = node_sum
        self._node_count = arrays["node_count"]
        self._node_count_f = arrays["node_count_f"]
        self._node_min = arrays["node_min"]
        self._node_max = arrays["node_max"]
        self._row_by_id = {}
        self._zv_cache = None

        self._parent = arrays["parent"]
        self._parent0 = arrays["parent0"]
        self._is_leaf = arrays["is_leaf"]
        self._leaf_of_row = arrays["leaf_of_row"]
        depth = arrays["depth"]
        self._levels = tuple(
            np.flatnonzero(depth == level_depth)
            for level_depth in range(int(depth.max()) + 1 if n else 0)
        )
        columns = [str(column) for column in header["columns"]]
        self._column_index = {column: c for c, column in enumerate(columns)}
        col_lows = arrays["col_lows"]
        col_highs = arrays["col_highs"]
        self._col_lows = tuple(col_lows[c] for c in range(len(columns)))
        self._col_highs = tuple(col_highs[c] for c in range(len(columns)))
        self._geometry = _ExternalGeometry(lows=col_lows.T, highs=col_highs.T)

        offsets = arrays["sample_offsets"]
        self._samples = FlatSamples(
            offsets=offsets,
            columns={
                str(column): arrays[f"sample/{column}"]
                for column in header["sample_columns"]
            },
        )
        self._samples_stale = False
        self._sample_counts = np.diff(offsets)
        return self

    def update_node_stats(self, nodes: Sequence[object]) -> None:
        """Mirror in-place statistic mutations of the given tree nodes.

        Called by the dynamic update path after a root-to-leaf insert /
        delete pass; cost is O(path length) array writes.  Nodes not in
        this tree are ignored (defensive: never happens in-process).
        """
        row_by_id = self._row_by_id
        for node in nodes:
            row = row_by_id.get(id(node))
            if row is None:
                continue
            stats = node.stats  # type: ignore[attr-defined]
            self._node_sum[row] = stats.sum
            self._node_count[row] = stats.count
            self._node_count_f[row] = stats.count
            self._node_min[row] = stats.min
            self._node_max[row] = stats.max
        self._zv_cache = None

    def replace_leaf_sample(self, leaf_index: int, stratum: Stratum) -> None:
        """Mirror a leaf-sample replacement into the CSR arrays.

        A same-length swap with the same column set (the common case —
        reservoir replacement preserves the sample size) writes in place;
        anything else marks the CSR structure stale for a lazy rebuild on
        the next access.
        """
        if self._samples_stale:
            return
        samples = self._samples
        start = int(samples.offsets[leaf_index])
        stop = int(samples.offsets[leaf_index + 1])
        if stratum.sample_size != stop - start or any(
            column not in stratum.sample_columns for column in samples.columns
        ):
            self._samples_stale = True
            return
        for column, array in samples.columns.items():
            array[start:stop] = np.asarray(
                stratum.sample_columns[column], dtype=float
            )

    def _zv_flags(self) -> np.ndarray:
        """Per-node ``stats.has_zero_variance`` flags, cached until stats change."""
        flags = self._zv_cache
        if flags is None:
            flags = (self._node_count > 0) & (self._node_min == self._node_max)
            self._zv_cache = flags
        return flags

    # ------------------------------------------------------------------
    # Frontier kernels
    # ------------------------------------------------------------------
    def frontier(
        self, predicate: RectPredicate, zero_variance: bool = False
    ) -> FlatFrontier:
        """Run the MCF index lookup over the bound arrays (Algorithm 1).

        Identical to ``PartitionTree.minimal_coverage_frontier`` — covered /
        partial order and ``nodes_visited`` included — via the closed form
        described in the module docstring, with a level-order replay
        fallback when ``zero_variance`` stops could fire.
        """
        n = self._n_nodes
        disjoint: np.ndarray | None = None
        cover: np.ndarray | None = None
        never_covers = False
        column_index = self._column_index
        for column, low, high in predicate.canonical_key():
            c = column_index.get(column)
            if c is None:
                never_covers = True
                continue
            node_lows = self._col_lows[c]
            node_highs = self._col_highs[c]
            dis = np.greater(low, node_highs)
            np.logical_or(dis, np.greater(node_lows, high), out=dis)
            if disjoint is None:
                disjoint = dis
            else:
                np.logical_or(disjoint, dis, out=disjoint)
            cov = np.less_equal(low, node_lows)
            np.logical_and(cov, np.less_equal(node_highs, high), out=cov)
            if cover is None:
                cover = cov
            else:
                np.logical_and(cover, cov, out=cover)
        if disjoint is None:
            disjoint = np.zeros(n, dtype=bool)
        if never_covers:
            cover = np.zeros(n, dtype=bool)
        elif cover is None:
            # No geometry column constrained: containment is vacuously true
            # for every node (the predicate region is the whole space).
            cover = np.ones(n, dtype=bool)
        partial = np.logical_or(cover, disjoint)
        np.logical_not(partial, out=partial)

        if zero_variance:
            zv = self._zv_flags()
            if bool(np.any(np.logical_and(partial, zv))):
                return self._replay_frontier(cover, partial, zv)

        reached = partial[self._parent0]
        reached[0] = True
        covered_rows = np.flatnonzero(np.logical_and(cover, reached))
        partial_mask = np.logical_and(partial, reached)
        np.logical_and(partial_mask, self._is_leaf, out=partial_mask)
        partial_rows = np.flatnonzero(partial_mask)
        return FlatFrontier(
            covered=covered_rows,
            partial=partial_rows,
            nodes_visited=int(np.count_nonzero(reached)),
        )

    def _replay_frontier(
        self, cover: np.ndarray, partial: np.ndarray, zv: np.ndarray
    ) -> FlatFrontier:
        """Level-order descent replay for the AVG zero-variance shortcut.

        Exact single-query mirror of the replay in
        ``PartitionTree.batch_coverage_frontiers`` (which is itself proven
        identical to the sequential descent): a node is visited iff its
        parent was reached, partially overlapped, not stopped by a cover /
        zero-variance hit, and not a leaf.
        """
        stops = np.logical_and(partial, zv)
        np.logical_or(stops, cover, out=stops)
        internal_partial = partial & ~stops & ~self._is_leaf
        n = self._n_nodes
        reached = np.zeros(n, dtype=bool)
        descends = np.zeros(n, dtype=bool)
        for level in self._levels:
            if level[0] == 0:
                reached[0] = True
            else:
                reached[level] = descends[self._parent[level]]
            descends[level] = reached[level] & internal_partial[level]
        covered_rows = np.flatnonzero(reached & stops)
        partial_rows = np.flatnonzero(
            reached & partial & ~stops & self._is_leaf
        )
        return FlatFrontier(
            covered=covered_rows,
            partial=partial_rows,
            nodes_visited=int(reached.sum()),
        )

    def frontiers_for(
        self, predicates: Sequence[RectPredicate]
    ) -> list[FlatFrontier]:
        """One MCF lookup per predicate in a single broadcasted pass.

        Used by the grouped executor (which never applies the zero-variance
        rule, so the closed form is always valid); each returned frontier is
        identical to :meth:`frontier` — and therefore to the sequential
        object descent — on the same predicate.
        """
        n_queries = len(predicates)
        if n_queries == 0:
            return []
        column_index = self._column_index
        n_cols = len(column_index)
        lows = np.full((n_queries, n_cols), -np.inf)
        highs = np.full((n_queries, n_cols), np.inf)
        never_covers = np.zeros(n_queries, dtype=bool)
        for j, predicate in enumerate(predicates):
            for column, low, high in predicate.canonical_key():
                c = column_index.get(column)
                if c is None:
                    never_covers[j] = True
                else:
                    lows[j, c] = low
                    highs[j, c] = high

        node_lows = self._geometry.lows[:, :, None]
        node_highs = self._geometry.highs[:, :, None]
        p_lows = lows.T[None, :, :]
        p_highs = highs.T[None, :, :]
        disjoint = ((p_lows > node_highs) | (node_lows > p_highs)).any(axis=1)
        cover = ((p_lows <= node_lows) & (node_highs <= p_highs)).all(axis=1)
        cover &= ~never_covers[None, :]
        partial = ~cover & ~disjoint

        reached = partial[self._parent0, :]
        reached[0, :] = True
        covered_mask = cover & reached
        partial_mask = partial & reached & self._is_leaf[:, None]
        visited = np.count_nonzero(reached, axis=0)
        return [
            FlatFrontier(
                covered=np.flatnonzero(covered_mask[:, j]),
                partial=np.flatnonzero(partial_mask[:, j]),
                nodes_visited=int(visited[j]),
            )
            for j in range(n_queries)
        ]

    def frontier_count(self, frontier: FlatFrontier) -> int:
        """Tuples inside the frontier's covered + partial nodes (exact)."""
        return int(
            self._node_count[frontier.covered].sum()
            + self._node_count[frontier.partial].sum()
        )

    def materialize(self, frontier: FlatFrontier) -> MCFResult:
        """The equivalent object-path :class:`MCFResult` (for sketch reuse).

        Unavailable on buffer-backed instances (:meth:`from_buffers`), which
        carry no node objects.
        """
        nodes = self._geometry.nodes
        if not nodes:
            raise ValueError(
                "a buffer-backed FlatSynopsis has no node objects to materialize"
            )
        return MCFResult(
            covered=tuple(nodes[row] for row in frontier.covered.tolist()),
            partial=tuple(nodes[row] for row in frontier.partial.tolist()),
            nodes_visited=frontier.nodes_visited,
        )

    # ------------------------------------------------------------------
    # Array views for the batch executor
    # ------------------------------------------------------------------
    def node_stat_arrays(
        self,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Synced per-node ``(sum, count, min, max)`` float arrays.

        Same values (and dtypes) as ``_TreeGeometry.node_stat_arrays`` but
        without the O(nodes) ``fromiter`` rebuild per call.  Treat as
        read-only — these are the live synced arrays, not copies.
        """
        return self._node_sum, self._node_count_f, self._node_min, self._node_max

    def sample_count(self, leaf_index: int) -> int:
        """Number of stored sample rows for one leaf."""
        self._ensure_samples()
        return int(self._sample_counts[leaf_index])

    def gather_samples(
        self, leaf_indices: Sequence[int], column: str
    ) -> np.ndarray:
        """Concatenated sample values of ``column`` for the given leaves.

        Bit-identical to concatenating the object strata's per-leaf arrays
        in the same leaf order (the CSR arrays are float64 copies of the
        same data).
        """
        samples = self._ensure_samples()
        offsets = samples.offsets
        values = samples.columns[column]
        return np.concatenate(
            [
                values[int(offsets[leaf]) : int(offsets[leaf + 1])]
                for leaf in leaf_indices
            ]
            or [np.zeros(0, dtype=float)]
        )

    # ------------------------------------------------------------------
    # Hard bounds (Section 2.3) over node rows
    # ------------------------------------------------------------------
    def hard_bounds_rows(
        self,
        agg: AggregateType,
        covered_rows: np.ndarray,
        partial_rows: np.ndarray,
    ) -> HardBounds:
        """:func:`repro.aggregation.strat_agg.hard_bounds` over node rows.

        Faithful replication — Python-scalar summation in row order after
        dropping empty partitions — so the bounds are bit-identical to the
        object path's.
        """
        counts_cov = self._node_count[covered_rows].tolist()
        counts_par = self._node_count[partial_rows].tolist()

        if agg in (AggregateType.SUM, AggregateType.COUNT):
            if agg == AggregateType.SUM:
                vals_cov = self._node_sum[covered_rows].tolist()
                vals_par = self._node_sum[partial_rows].tolist()
                covered_total = sum(
                    value for value, count in zip(vals_cov, counts_cov) if count
                )
                partial_total = sum(
                    value for value, count in zip(vals_par, counts_par) if count
                )
            else:
                covered_total = sum(float(count) for count in counts_cov if count)
                partial_total = sum(float(count) for count in counts_par if count)
            return HardBounds(
                lower=covered_total, upper=covered_total + partial_total
            )

        if agg == AggregateType.AVG:
            sums_cov = self._node_sum[covered_rows].tolist()
            covered_sum = sum(
                value for value, count in zip(sums_cov, counts_cov) if count
            )
            covered_count = sum(count for count in counts_cov if count)
            covered_avg = (
                covered_sum / covered_count if covered_count else float("nan")
            )
            maxs_par = self._node_max[partial_rows].tolist()
            mins_par = self._node_min[partial_rows].tolist()
            partial_max = max(
                (value for value, count in zip(maxs_par, counts_par) if count),
                default=-math.inf,
            )
            partial_min = min(
                (value for value, count in zip(mins_par, counts_par) if count),
                default=math.inf,
            )
            has_partial = any(counts_par)
            if covered_count and has_partial:
                return HardBounds(
                    lower=min(covered_avg, partial_min),
                    upper=max(covered_avg, partial_max),
                )
            if covered_count:
                return HardBounds(lower=covered_avg, upper=covered_avg)
            if has_partial:
                return HardBounds(lower=partial_min, upper=partial_max)
            return HardBounds(lower=math.nan, upper=math.nan)

        if agg == AggregateType.MAX:
            maxs_cov = self._node_max[covered_rows].tolist()
            maxs_par = self._node_max[partial_rows].tolist()
            covered_max = max(
                (value for value, count in zip(maxs_cov, counts_cov) if count),
                default=-math.inf,
            )
            partial_max = max(
                (value for value, count in zip(maxs_par, counts_par) if count),
                default=-math.inf,
            )
            has_covered = any(counts_cov)
            if not has_covered and not any(counts_par):
                return HardBounds(lower=math.nan, upper=math.nan)
            lower = covered_max if has_covered else -math.inf
            return HardBounds(lower=lower, upper=max(covered_max, partial_max))

        if agg == AggregateType.MIN:
            mins_cov = self._node_min[covered_rows].tolist()
            mins_par = self._node_min[partial_rows].tolist()
            covered_min = min(
                (value for value, count in zip(mins_cov, counts_cov) if count),
                default=math.inf,
            )
            partial_min = min(
                (value for value, count in zip(mins_par, counts_par) if count),
                default=math.inf,
            )
            has_covered = any(counts_cov)
            if not has_covered and not any(counts_par):
                return HardBounds(lower=math.nan, upper=math.nan)
            upper = covered_min if has_covered else math.inf
            return HardBounds(lower=min(covered_min, partial_min), upper=upper)

        raise ValueError(f"unsupported aggregate: {agg!r}")

    # ------------------------------------------------------------------
    # Predicate mask evaluation over CSR slices
    # ------------------------------------------------------------------
    def _mask_constraints(
        self, predicate: RectPredicate
    ) -> list[tuple[np.ndarray, float, float]]:
        """Per-column ``(values, low, high)`` triples for CSR mask slicing.

        Raises the same ``KeyError`` as ``Stratum.match_mask`` when the
        predicate constrains a column the samples do not carry — callers
        must only invoke this when at least one partial leaf exists, which
        is exactly when the object path would evaluate (and raise).
        """
        columns = self._ensure_samples().columns
        for column in predicate.columns:
            if column not in columns:
                raise KeyError(f"column {column!r} not provided for mask evaluation")
        return [
            (columns[column], low, high)
            for column, low, high in predicate.canonical_key()
        ]

    @staticmethod
    def _leaf_mask(
        constraints: Sequence[tuple[np.ndarray, float, float]],
        start: int,
        stop: int,
    ) -> np.ndarray:
        """Boolean match mask for one leaf's CSR slice.

        Conjunction of per-column range tests — identical bools to
        ``RectPredicate.mask`` on the object stratum (boolean AND is exact,
        so dropping the unbounded intervals the canonical key omits cannot
        change the result).
        """
        mask: np.ndarray | None = None
        for values, low, high in constraints:
            window = values[start:stop]
            column_mask = np.greater_equal(window, low)
            np.logical_and(column_mask, np.less_equal(window, high), out=column_mask)
            if mask is None:
                mask = column_mask
            else:
                np.logical_and(mask, column_mask, out=mask)
        if mask is None:
            return np.ones(stop - start, dtype=bool)
        return mask

    # ------------------------------------------------------------------
    # Single-query answering (Section 3.3)
    # ------------------------------------------------------------------
    def query(self, query: AggregateQuery, lam: float | None = None) -> AQPResult:
        """Answer a classic aggregate query entirely over the flat arrays.

        Bit-identical to ``PASSSynopsis.query_object`` for SUM / COUNT /
        AVG / MIN / MAX; sketch aggregates must go through the object path
        (they reduce to mergeable per-leaf sketches, not arrays).
        """
        if query.agg in SKETCH_AGGREGATES:
            raise ValueError(
                f"{query.agg.value} is a sketch aggregate; use the object path"
            )
        if query.value_column != self._value_column:
            raise ValueError(
                f"synopsis was built for column {self._value_column!r}, "
                f"query aggregates {query.value_column!r}"
            )
        lam = self._lam if lam is None else lam
        agg = query.agg
        use_zero_variance = self._zero_variance_rule and agg == AggregateType.AVG
        frontier = self.frontier(query.predicate, zero_variance=use_zero_variance)
        bounds = self.hard_bounds_rows(agg, frontier.covered, frontier.partial)

        self._ensure_samples()
        partial_rows = frontier.partial
        leaves = self._leaf_of_row[partial_rows]
        processed = int(self._sample_counts[leaves].sum())
        partial_population = int(self._node_count[partial_rows].sum())
        skipped = int(self._node_count[0]) - partial_population

        constraints = (
            self._mask_constraints(query.predicate)
            if partial_rows.shape[0]
            else []
        )
        if agg in (AggregateType.MIN, AggregateType.MAX):
            return self._extremum_answer(
                agg, frontier, constraints, bounds, processed, skipped
            )
        if agg == AggregateType.AVG:
            estimate, variance = self._avg_estimate(frontier, constraints)
        else:
            estimate, variance = self._sum_count_estimate(agg, frontier, constraints)

        exact = frontier.is_exact
        if exact:
            half_width = 0.0
            variance = 0.0
        elif math.isnan(variance):
            half_width = float("nan")
            variance = float("nan")
        else:
            half_width = lam * math.sqrt(max(variance, 0.0))
        return AQPResult(
            estimate=estimate,
            ci_half_width=half_width,
            variance=variance,
            hard_lower=bounds.lower,
            hard_upper=bounds.upper,
            tuples_processed=processed,
            tuples_skipped=skipped,
            exact=exact,
        )

    def _partial_iter(
        self, frontier: FlatFrontier
    ) -> tuple[list[int], list[int], list[float], list[int]]:
        """Per-partial-row ``(sizes, leaf indices, node sums, sample counts)``."""
        partial_rows = frontier.partial
        leaves_arr = self._leaf_of_row[partial_rows]
        sizes = self._node_count[partial_rows].tolist()
        node_sums = self._node_sum[partial_rows].tolist()
        sample_counts = self._sample_counts[leaves_arr].tolist()
        return sizes, leaves_arr.tolist(), node_sums, sample_counts

    def _batched_partial_moments(
        self,
        sizes: Sequence[int],
        leaves: Sequence[int],
        constraints: Sequence[tuple[np.ndarray, float, float]],
        need_sum: bool,
        need_count: bool,
    ) -> tuple[list[tuple[float, float]], list[tuple[float, float]]]:
        """Stratified ``(estimate, variance)`` pairs for sampled partial leaves.

        Evaluates the predicate mask and the squared deviations once over the
        *gathered* CSR segments of all ``leaves`` (a handful of vector ops
        total), then reduces each leaf's contiguous slice with
        ``np.add.reduce`` — the same pairwise summation over the same values
        in the same order as the per-leaf scalar path, so every returned pair
        is bit-identical to :func:`_sum_contribution` /
        :func:`_count_contribution` on that leaf while amortizing the numpy
        call overhead across the whole frontier.  Callers must pre-filter to
        leaves with ``size > 0`` and a non-empty sample.
        """
        samples = self._samples
        offsets = samples.offsets
        if len(leaves) <= 2:
            # Gathering cannot amortize anything over one or two leaves
            # (the 1-D boundary case); the per-leaf scalar replicas are
            # cheaper and produce the same bits.
            values_column = (
                samples.columns[self._value_column] if need_sum else None
            )
            sum_pairs = []
            count_pairs = []
            for size, leaf in zip(sizes, leaves):
                start = int(offsets[leaf])
                stop = int(offsets[leaf + 1])
                mask = self._leaf_mask(constraints, start, stop)
                if need_sum:
                    sum_pairs.append(
                        _sum_contribution(
                            values_column[start:stop], mask, size, self._with_fpc
                        )
                    )
                if need_count:
                    count_pairs.append(
                        _count_contribution(mask, size, self._with_fpc)
                    )
            return sum_pairs, count_pairs
        leaf_arr = np.asarray(leaves, dtype=np.int64)
        starts = offsets[leaf_arr].tolist()
        stops = offsets[leaf_arr + 1].tolist()
        slices = list(zip(starts, stops))
        counts = [stop - start for start, stop in slices]
        loc = [0]
        for count in counts:
            loc.append(loc[-1] + count)
        total = loc[-1]

        mask: np.ndarray | None = None
        for values, low, high in constraints:
            window = np.concatenate([values[s:e] for s, e in slices])
            column_mask = np.greater_equal(window, low)
            np.logical_and(column_mask, np.less_equal(window, high), out=column_mask)
            if mask is None:
                mask = column_mask
            else:
                np.logical_and(mask, column_mask, out=mask)
        if mask is None:
            mask = np.ones(total, dtype=bool)
        indicator = mask.astype(float)

        sum_pairs: list[tuple[float, float]] = []
        count_pairs: list[tuple[float, float]] = []
        if need_sum:
            values_column = samples.columns[self._value_column]
            gathered_values = np.concatenate([values_column[s:e] for s, e in slices])
            contributions = np.multiply(indicator, gathered_values)
            sum_pairs = self._segment_pairs(contributions, loc, counts, sizes)
        if need_count:
            count_pairs = self._segment_pairs(indicator, loc, counts, sizes)
        return sum_pairs, count_pairs

    def _segment_pairs(
        self,
        data: np.ndarray,
        loc: Sequence[int],
        counts: Sequence[int],
        sizes: Sequence[int],
    ) -> list[tuple[float, float]]:
        """Per-segment stratified ``(estimate, variance)`` over ``data``.

        Segment ``i`` spans ``data[loc[i]:loc[i + 1]]`` and scales to stratum
        size ``sizes[i]``.  Means and squared deviations follow the exact
        ufunc sequence of :func:`_fast_mean` / :func:`_fast_var` (segment
        means are divided vectorized, but float64 division by an exactly
        representable integer is the same IEEE operation either way).
        """
        n_segments = len(counts)
        segment_sums = [
            np.add.reduce(data[loc[i] : loc[i + 1]]) for i in range(n_segments)
        ]
        means = np.array(segment_sums, dtype=np.float64) / np.asarray(
            counts, dtype=np.float64
        )
        deviations = data - np.repeat(means, counts)
        np.multiply(deviations, deviations, out=deviations)
        with_fpc = self._with_fpc
        pairs: list[tuple[float, float]] = []
        for i, (size, sample_size) in enumerate(zip(sizes, counts)):
            estimate = float(means[i]) * size
            if sample_size <= 1:
                sample_variance = 0.0
            else:
                sample_variance = float(
                    np.add.reduce(deviations[loc[i] : loc[i + 1]]) / sample_size
                )
            variance = (size**2) * sample_variance / sample_size
            if with_fpc:
                variance *= finite_population_correction(size, sample_size)
            pairs.append((estimate, variance))
        return pairs

    def _sum_count_estimate(
        self,
        agg: AggregateType,
        frontier: FlatFrontier,
        constraints: Sequence[tuple[np.ndarray, float, float]],
    ) -> tuple[float, float]:
        """SUM / COUNT estimate + variance, mirroring the object accumulation.

        Covered nodes contribute exactly (Python-scalar sums in row order);
        each sampled partial leaf adds its stratified contribution; an
        unsampled one adds the hard-bound midpoint and poisons the variance
        with NaN — exactly ``PASSSynopsis._sum_count_estimate``.
        """
        is_sum = agg == AggregateType.SUM
        if is_sum:
            estimate = sum(self._node_sum[frontier.covered].tolist())
        else:
            estimate = float(sum(self._node_count[frontier.covered].tolist()))
        variance = 0.0
        sizes, leaves, node_sums, sample_counts = self._partial_iter(frontier)
        sampled_sizes = []
        sampled_leaves = []
        for size, leaf, n_sample in zip(sizes, leaves, sample_counts):
            if size > 0 and n_sample > 0:
                sampled_sizes.append(size)
                sampled_leaves.append(leaf)
        if sampled_leaves:
            sum_pairs, count_pairs = self._batched_partial_moments(
                sampled_sizes,
                sampled_leaves,
                constraints,
                need_sum=is_sum,
                need_count=not is_sum,
            )
            pairs = sum_pairs if is_sum else count_pairs
        else:
            pairs = []
        next_pair = 0
        for size, node_sum, n_sample in zip(sizes, node_sums, sample_counts):
            if size == 0:
                estimate = estimate + 0.0
                variance = variance + 0.0
                continue
            if n_sample == 0:
                midpoint = 0.5 * (node_sum if is_sum else size)
                estimate = estimate + midpoint
                variance = float("nan")
                continue
            part_est, part_var = pairs[next_pair]
            next_pair += 1
            estimate = estimate + part_est
            variance = variance + part_var
        return estimate, variance

    def _avg_estimate(
        self,
        frontier: FlatFrontier,
        constraints: Sequence[tuple[np.ndarray, float, float]],
    ) -> tuple[float, float]:
        """AVG as the SUM/COUNT delta-method ratio, with one mask per leaf.

        The object path runs two independent passes (SUM then COUNT), each
        re-evaluating the predicate mask; both accumulate the exact same
        per-leaf masks, so computing the mask once and feeding both
        accumulators yields bit-identical numerator and denominator.
        """
        num = sum(self._node_sum[frontier.covered].tolist())
        num_var = 0.0
        den = float(sum(self._node_count[frontier.covered].tolist()))
        den_var = 0.0
        sizes, leaves, node_sums, sample_counts = self._partial_iter(frontier)
        sampled_sizes = []
        sampled_leaves = []
        for size, leaf, n_sample in zip(sizes, leaves, sample_counts):
            if size > 0 and n_sample > 0:
                sampled_sizes.append(size)
                sampled_leaves.append(leaf)
        if sampled_leaves:
            sum_pairs, count_pairs = self._batched_partial_moments(
                sampled_sizes,
                sampled_leaves,
                constraints,
                need_sum=True,
                need_count=True,
            )
        else:
            sum_pairs, count_pairs = [], []
        next_pair = 0
        for size, node_sum, n_sample in zip(sizes, node_sums, sample_counts):
            if size == 0:
                num = num + 0.0
                num_var = num_var + 0.0
                den = den + 0.0
                den_var = den_var + 0.0
                continue
            if n_sample == 0:
                num = num + 0.5 * node_sum
                num_var = float("nan")
                den = den + 0.5 * size
                den_var = float("nan")
                continue
            sum_est, sum_var = sum_pairs[next_pair]
            cnt_est, cnt_var = count_pairs[next_pair]
            next_pair += 1
            num = num + sum_est
            num_var = num_var + sum_var
            den = den + cnt_est
            den_var = den_var + cnt_var
        if den == 0:
            return float("nan"), float("nan")
        if frontier.is_exact:
            return num / den, 0.0
        combined = ratio_estimate(
            EstimateWithVariance(num, num_var), EstimateWithVariance(den, den_var)
        )
        return combined.estimate, combined.variance

    def _extremum_answer(
        self,
        agg: AggregateType,
        frontier: FlatFrontier,
        constraints: Sequence[tuple[np.ndarray, float, float]],
        bounds: HardBounds,
        processed: int,
        skipped: int,
    ) -> AQPResult:
        """MIN / MAX: exact over covered rows, sample-refined over partial leaves."""
        is_max = agg == AggregateType.MAX
        stats_values = (self._node_max if is_max else self._node_min)[
            frontier.covered
        ].tolist()
        candidates = [value for value in stats_values if not math.isinf(value)]
        offsets = self._samples.offsets
        values_column = self._samples.columns.get(self._value_column)
        for leaf in self._leaf_of_row[frontier.partial].tolist():
            start = int(offsets[leaf])
            stop = int(offsets[leaf + 1])
            if stop == start:
                continue
            mask = self._leaf_mask(constraints, start, stop)
            matched = values_column[start:stop][mask]
            if matched.shape[0]:
                candidates.append(
                    float(matched.max() if is_max else matched.min())
                )
        if candidates:
            estimate = max(candidates) if is_max else min(candidates)
        else:
            estimate = float("nan")
        exact = frontier.is_exact
        return AQPResult(
            estimate=estimate,
            ci_half_width=0.0 if exact else float("nan"),
            variance=0.0 if exact else float("nan"),
            hard_lower=bounds.lower,
            hard_upper=bounds.upper,
            tuples_processed=processed,
            tuples_skipped=skipped,
            exact=exact,
        )

    # ------------------------------------------------------------------
    # Grouped execution kernels (mirrors of repro.core.batching internals)
    # ------------------------------------------------------------------
    def grouped_leaf_moments(
        self,
        items: Sequence[tuple[RectPredicate, FlatFrontier]],
        need_extrema: bool,
    ) -> dict[tuple[int, int], _LeafMoments | None]:
        """Per-(cell slot, leaf) masked-sample moments over CSR slices.

        Bit-identical mirror of ``batching._grouped_leaf_moments``: same
        per-leaf slot grouping (dict insertion order), same broadcasted
        comparisons and matrix products, over CSR slices instead of object
        strata.  ``None`` marks an unsampled leaf.
        """
        per_leaf: dict[int, list[int]] = {}
        leaf_of_row = self._leaf_of_row
        for slot, (_, frontier) in enumerate(items):
            for leaf in leaf_of_row[frontier.partial].tolist():
                per_leaf.setdefault(leaf, []).append(slot)

        moments: dict[tuple[int, int], _LeafMoments | None] = {}
        samples = self._ensure_samples()
        offsets = samples.offsets
        value_values = samples.columns.get(self._value_column)
        for leaf_index, slots in per_leaf.items():
            start = int(offsets[leaf_index])
            stop = int(offsets[leaf_index + 1])
            n_samples = stop - start
            if n_samples == 0:
                for slot in slots:
                    moments[(slot, leaf_index)] = None
                continue
            matrix = np.ones((len(slots), n_samples), dtype=bool)
            columns: dict[str, None] = {}
            for slot in slots:
                for column, _, _ in items[slot][0].canonical_key():
                    columns.setdefault(column, None)
            for column in columns:
                values = samples.columns[column][start:stop]
                intervals = [items[slot][0].interval(column) for slot in slots]
                lows = np.array([interval.low for interval in intervals])
                highs = np.array([interval.high for interval in intervals])
                matrix &= (values[None, :] >= lows[:, None]) & (
                    values[None, :] <= highs[:, None]
                )
            sample_values = value_values[start:stop]
            matched = matrix.sum(axis=1)
            sums = matrix @ sample_values
            sums_sq = matrix @ (sample_values * sample_values)
            if need_extrema:
                minima = np.where(matrix, sample_values[None, :], np.inf).min(axis=1)
                maxima = np.where(matrix, sample_values[None, :], -np.inf).max(
                    axis=1
                )
            else:
                minima = maxima = np.zeros(len(slots))
            for row, slot in enumerate(slots):
                moments[(slot, leaf_index)] = (
                    int(matched[row]),
                    float(sums[row]),
                    float(sums_sq[row]),
                    float(minima[row]),
                    float(maxima[row]),
                    float(n_samples),
                )
        return moments

    def _stratified_total(
        self,
        agg: AggregateType,
        frontier: FlatFrontier,
        cell_moments: Sequence[_LeafMoments | None],
        with_fpc: bool,
    ) -> tuple[float, float]:
        """SUM / COUNT estimate + variance from per-leaf moments.

        Mirror of ``batching._stratified_total`` over node rows; note the
        covered total here does *not* drop empty partitions (neither does
        the original).
        """
        is_sum = agg == AggregateType.SUM
        if is_sum:
            estimate = sum(self._node_sum[frontier.covered].tolist())
        else:
            estimate = sum(
                float(count) for count in self._node_count[frontier.covered].tolist()
            )
        variance = 0.0
        sizes = self._node_count[frontier.partial].tolist()
        node_sums = self._node_sum[frontier.partial].tolist()
        for size, node_sum, data in zip(sizes, node_sums, cell_moments):
            if size == 0:
                continue
            if data is None:
                estimate += 0.5 * (node_sum if is_sum else size)
                variance = float("nan")
                continue
            matched, sums, sums_sq, _, _, n_samples = data
            if is_sum:
                mean = sums / n_samples
                mean_sq = sums_sq / n_samples
            else:
                mean = matched / n_samples
                mean_sq = mean
            sample_variance = (
                max(mean_sq - mean * mean, 0.0) if n_samples > 1 else 0.0
            )
            estimate += size * mean
            contribution = size * size * sample_variance / n_samples
            if with_fpc:
                contribution *= finite_population_correction(size, int(n_samples))
            variance += contribution
        return estimate, variance

    def assemble_cell_row(
        self,
        aggs: Sequence[AggregateType],
        frontier: FlatFrontier,
        moments: dict[tuple[int, int], _LeafMoments | None],
        slot: int,
        lam: float,
        with_fpc: bool,
        population: int,
    ) -> tuple[AQPResult, ...]:
        """One group cell's per-aggregate answers from rows and moments.

        Bit-identical mirror of ``batching._assemble_cell_row`` (shared
        SUM/COUNT totals for AVG, hard bounds, extremum candidates,
        processed / skipped accounting) over the flat arrays.
        """
        partial_rows = frontier.partial
        leaf_ids = self._leaf_of_row[partial_rows].tolist()
        cell_moments = [moments[(slot, leaf)] for leaf in leaf_ids]
        processed = sum(int(data[5]) for data in cell_moments if data is not None)
        partial_sizes = self._node_count[partial_rows].tolist()
        skipped = population - sum(partial_sizes)
        exact = frontier.is_exact
        totals: dict[AggregateType, tuple[float, float]] = {}

        def total(agg: AggregateType) -> tuple[float, float]:
            if agg not in totals:
                totals[agg] = self._stratified_total(
                    agg, frontier, cell_moments, with_fpc
                )
            return totals[agg]

        row = []
        for agg in aggs:
            bounds = self.hard_bounds_rows(agg, frontier.covered, partial_rows)
            if agg in (AggregateType.MIN, AggregateType.MAX):
                is_max = agg == AggregateType.MAX
                stats_values = (self._node_max if is_max else self._node_min)[
                    frontier.covered
                ].tolist()
                candidates = [
                    value for value in stats_values if not math.isinf(value)
                ]
                for data in cell_moments:
                    if data is not None and data[0] > 0:
                        candidates.append(data[4] if is_max else data[3])
                estimate = (
                    (max(candidates) if is_max else min(candidates))
                    if candidates
                    else float("nan")
                )
                row.append(
                    AQPResult(
                        estimate=estimate,
                        ci_half_width=0.0 if exact else float("nan"),
                        variance=0.0 if exact else float("nan"),
                        hard_lower=bounds.lower,
                        hard_upper=bounds.upper,
                        tuples_processed=processed,
                        tuples_skipped=skipped,
                        exact=exact,
                    )
                )
                continue

            if agg == AggregateType.AVG:
                num, num_var = total(AggregateType.SUM)
                den, den_var = total(AggregateType.COUNT)
                if den == 0:
                    estimate, variance = float("nan"), float("nan")
                elif exact:
                    estimate, variance = num / den, 0.0
                else:
                    combined = ratio_estimate(
                        EstimateWithVariance(num, num_var),
                        EstimateWithVariance(den, den_var),
                    )
                    estimate, variance = combined.estimate, combined.variance
            else:
                estimate, variance = total(agg)

            if exact:
                half_width, variance = 0.0, 0.0
            elif math.isnan(variance):
                half_width = float("nan")
            else:
                half_width = lam * math.sqrt(max(variance, 0.0))
            row.append(
                AQPResult(
                    estimate=estimate,
                    ci_half_width=half_width,
                    variance=variance,
                    hard_lower=bounds.lower,
                    hard_upper=bounds.upper,
                    tuples_processed=processed,
                    tuples_skipped=skipped,
                    exact=exact,
                )
            )
        return tuple(row)
