"""Configuration of a PASS synopsis build.

Section 3.1: the user hands the system a construction time budget ``tau_c``
and a query latency budget ``tau_q``; internally these become the number of
leaf partitions ``k`` and the sampling budget ``K``.  :class:`PASSConfig`
exposes the internal knobs directly (the form every experiment uses) plus a
:meth:`PASSConfig.from_time_budgets` helper implementing a simple, documented
cost model for the budget-to-knob translation.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.query.aggregates import AggregateType
from repro.result import LAMBDA_99

__all__ = ["PASSConfig", "PARTITIONER_CHOICES"]

#: Valid values of :attr:`PASSConfig.partitioner`.
PARTITIONER_CHOICES = (
    "adp",          # approximate dynamic programming (1-D, the paper's ** algorithm)
    "equal",        # equal-depth partitioning (EQ baseline)
    "count_optimal",  # equal-count optimum for COUNT templates
    "hill",         # AQP++-style hill climbing
    "kd",           # k-d tree, max-variance expansion (KD-PASS)
    "kd_us",        # k-d tree, breadth-first expansion (KD-US baseline)
)


@dataclass(frozen=True)
class PASSConfig:
    """All knobs of a PASS build (Section 4.5's knob table).

    Attributes
    ----------
    n_partitions:
        Number of leaf partitions ``k``.  More partitions improve accuracy
        and data skipping at the cost of construction time.
    sample_rate / sample_size:
        Sampling budget ``K`` as a fraction of the table or as an absolute
        count.  Exactly one of the two must be set.
    partitioner:
        Which leaf-partitioning optimizer to run (see
        :data:`PARTITIONER_CHOICES`).  1-D partitioners require a single
        predicate column; the k-d variants handle any dimensionality.
    agg_template:
        The query template (SUM / COUNT / AVG) the partitioning optimizes for.
    delta:
        Meaningful-query fraction of Section 4.2 (minimum partial-overlap
        size as a fraction of the optimization sample).
    opt_sample_size:
        Size ``m`` of the uniform sample the optimizer runs on.  ``None``
        selects the per-optimizer default.
    allocation:
        Per-leaf sampling allocation in BSS mode: ``"equal"`` (``K/k`` per
        leaf, default — matching the ST baseline and concentrating samples in
        the small, high-variance leaves ADP creates) or ``"proportional"``
        (per-leaf budget proportional to leaf size).
    mode:
        ``"ess"`` — effective-sample-size mode: every leaf holds
        ``K / (2 d)`` samples so any query's partially-overlapped leaves
        together contain roughly the uniform-sampling budget ``K`` (per-query
        IO is controlled; total storage may exceed ``K``); or ``"bss"`` —
        bounded-sample-size mode: the total number of stored samples is
        capped at ``bss_multiplier`` times the uniform budget (Section 5.1.4).
    bss_multiplier:
        Storage multiplier for BSS mode (2x / 10x in Table 1).
    zero_variance_rule:
        Enable the 0-variance MCF shortcut for AVG queries (Section 3.4).
    with_fpc:
        Apply finite-population corrections to per-leaf estimates.
    lam:
        Confidence-interval multiplier (2.576 for the paper's 99% intervals).
    fanout:
        Fan-out of the internal partition-tree nodes; ``None`` picks 2 for
        one predicate column and ``2^d`` (capped at 8) otherwise.
    seed:
        Seed for every random choice of the build (optimization sample and
        per-leaf samples).
    with_sketches:
        Attach mergeable per-leaf sketches (:mod:`repro.sketches`) so the
        synopsis can answer QUANTILE / COUNT_DISTINCT queries.  Costs one
        extra pass over the aggregation column at build time plus
        ``O(k log n)`` floats per leaf of storage.
    sketch_quantile_k:
        Compactor capacity of the per-leaf quantile sketches (rank error
        shrinks roughly as ``log(n/k) * n / k``; each sketch certifies its
        own bound).
    sketch_distinct_k:
        Minimum-hash capacity of the per-leaf distinct-count sketches
        (exact up to ``k`` distinct values, ``1/sqrt(k-2)`` relative
        standard error beyond).
    execution:
        Query execution engine: ``"soa"`` (default, array-native — see
        :mod:`repro.core.soa`) or ``"object"`` (per-node Python objects,
        the bit-identical oracle).
    """

    n_partitions: int = 64
    sample_rate: float | None = 0.005
    sample_size: int | None = None
    partitioner: str = "adp"
    agg_template: AggregateType = AggregateType.SUM
    delta: float = 0.05
    opt_sample_size: int | None = None
    allocation: str = "equal"
    mode: str = "ess"
    bss_multiplier: float = 1.0
    zero_variance_rule: bool = True
    with_fpc: bool = False
    lam: float = LAMBDA_99
    fanout: int | None = None
    seed: int = 0
    with_sketches: bool = True
    sketch_quantile_k: int = 200
    sketch_distinct_k: int = 1024
    execution: str = "soa"

    def __post_init__(self) -> None:
        if self.n_partitions <= 0:
            raise ValueError("n_partitions must be positive")
        if (self.sample_rate is None) == (self.sample_size is None):
            raise ValueError("set exactly one of sample_rate or sample_size")
        if self.sample_rate is not None and not 0.0 < self.sample_rate <= 1.0:
            raise ValueError("sample_rate must be in (0, 1]")
        if self.sample_size is not None and self.sample_size <= 0:
            raise ValueError("sample_size must be positive")
        if self.partitioner not in PARTITIONER_CHOICES:
            raise ValueError(
                f"unknown partitioner {self.partitioner!r}; "
                f"choices: {', '.join(PARTITIONER_CHOICES)}"
            )
        if self.allocation not in ("proportional", "equal"):
            raise ValueError("allocation must be 'proportional' or 'equal'")
        if self.mode not in ("ess", "bss"):
            raise ValueError("mode must be 'ess' or 'bss'")
        if self.bss_multiplier <= 0:
            raise ValueError("bss_multiplier must be positive")
        if not 0.0 < self.delta <= 1.0:
            raise ValueError("delta must be in (0, 1]")
        if self.sketch_quantile_k < 8:
            raise ValueError("sketch_quantile_k must be at least 8")
        if self.sketch_distinct_k < 16:
            raise ValueError("sketch_distinct_k must be at least 16")
        if self.execution not in ("soa", "object"):
            raise ValueError(
                f"execution must be 'soa' or 'object', got {self.execution!r}"
            )
        object.__setattr__(self, "agg_template", AggregateType.parse(self.agg_template))

    def with_overrides(self, **overrides) -> "PASSConfig":
        """A copy of the configuration with the given fields replaced."""
        return replace(self, **overrides)

    def total_sample_budget(self, n_rows: int) -> int:
        """The total number of samples the budget allows for ``n_rows`` tuples."""
        if self.sample_size is not None:
            base = self.sample_size
        else:
            base = max(1, int(round(self.sample_rate * n_rows)))
        if self.mode == "bss":
            base = max(1, int(round(base * self.bss_multiplier)))
        return min(base, n_rows)

    @classmethod
    def from_time_budgets(
        cls,
        n_rows: int,
        construction_seconds: float,
        query_milliseconds: float,
        partitions_per_second: float = 8.0,
        tuples_per_millisecond: float = 2000.0,
        **overrides,
    ) -> "PASSConfig":
        """Translate (tau_c, tau_q) time budgets into internal knobs.

        The cost model is deliberately simple and documented rather than
        tuned: construction time is dominated by the per-partition
        optimization work (``partitions_per_second`` partitions per second of
        budget), and query latency is dominated by scanning samples
        (``tuples_per_millisecond`` samples per millisecond of budget).  The
        resulting ``k`` and ``K`` are clamped to sensible ranges.
        """
        if construction_seconds <= 0 or query_milliseconds <= 0:
            raise ValueError("time budgets must be positive")
        n_partitions = int(
            max(2, min(4096, construction_seconds * partitions_per_second))
        )
        sample_size = int(
            max(16, min(n_rows, query_milliseconds * tuples_per_millisecond))
        )
        return cls(
            n_partitions=n_partitions,
            sample_rate=None,
            sample_size=sample_size,
            **overrides,
        )
