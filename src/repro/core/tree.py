"""The partition tree and the Minimal Coverage Frontier (MCF) algorithm.

A partition tree (Definition 3.1) is a hierarchy of partitions in which every
child is contained in its parent, siblings are disjoint, and siblings jointly
cover their parent.  Every node carries the precomputed SUM / COUNT / MIN /
MAX of its tuples.  The leaves carry (elsewhere, in the PASS synopsis) the
stratified samples.

The MCF algorithm (Algorithm 1) walks the tree for a query predicate and
returns the minimal set of nodes that covers the query: internal or leaf
nodes fully covered by the predicate (answered exactly from their aggregates)
and leaf nodes partially overlapped (answered from their samples).  Nodes
disjoint from the predicate are pruned, which is the source of PASS's data
skipping.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

import numpy as np

from repro.aggregation.partition import PartitionStats
from repro.query.predicate import Box, Interval, RectPredicate, Relation

__all__ = [
    "PartitionNode",
    "PartitionTree",
    "MCFResult",
    "BatchFrontiers",
    "boxes_to_arrays",
    "boxes_from_arrays",
]


def boxes_to_arrays(boxes: Sequence[Box]) -> dict[str, np.ndarray]:
    """Encode a list of boxes as flat numpy arrays (for npz persistence).

    The encoding records which columns each box constrains (boxes are named
    interval mappings, and membership matters: ``leaf_for_point`` only tests
    columns present in a box), so the round trip through
    :func:`boxes_from_arrays` reproduces each box exactly.
    """
    columns = sorted({column for box in boxes for column in box.columns})
    n = len(boxes)
    low = np.zeros((n, len(columns)), dtype=float)
    high = np.zeros((n, len(columns)), dtype=float)
    present = np.zeros((n, len(columns)), dtype=bool)
    for i, box in enumerate(boxes):
        for j, column in enumerate(columns):
            if column in box:
                interval = box.interval(column)
                present[i, j] = True
                low[i, j] = interval.low
                high[i, j] = interval.high
    return {
        "columns": np.array(columns, dtype=str),
        "low": low,
        "high": high,
        "present": present,
    }


def boxes_from_arrays(arrays: dict[str, np.ndarray]) -> list[Box]:
    """Inverse of :func:`boxes_to_arrays`."""
    columns = [str(column) for column in arrays["columns"]]
    low = np.asarray(arrays["low"], dtype=float)
    high = np.asarray(arrays["high"], dtype=float)
    present = np.asarray(arrays["present"], dtype=bool)
    boxes: list[Box] = []
    for i in range(low.shape[0]):
        intervals = {
            column: Interval(float(low[i, j]), float(high[i, j]))
            for j, column in enumerate(columns)
            if present[i, j]
        }
        boxes.append(Box(intervals))
    return boxes


@dataclass
class PartitionNode:
    """One node of a partition tree.

    Attributes
    ----------
    box:
        The node's partitioning condition ``psi``.
    stats:
        Precomputed aggregates of the node's tuples (mutable so dynamic
        updates can maintain them in place).
    children:
        Child nodes; empty for leaves.
    leaf_index:
        Position of the node in the tree's leaf list when it is a leaf,
        ``None`` otherwise.  The PASS synopsis uses it to find the stratified
        sample attached to the leaf.
    """

    box: Box
    stats: PartitionStats
    children: list["PartitionNode"] = field(default_factory=list)
    leaf_index: int | None = None

    @property
    def is_leaf(self) -> bool:
        """True when the node has no children."""
        return not self.children

    @property
    def size(self) -> int:
        """Number of dataset tuples in the node's partition."""
        return self.stats.count

    def iter_subtree(self) -> Iterator["PartitionNode"]:
        """Pre-order traversal of the subtree rooted at this node."""
        yield self
        for child in self.children:
            yield from child.iter_subtree()


@dataclass(frozen=True)
class MCFResult:
    """Outcome of an MCF traversal for one query predicate.

    Attributes
    ----------
    covered:
        Nodes fully covered by the predicate (answered exactly).
    partial:
        Leaf nodes partially overlapped by the predicate (answered from
        samples).
    nodes_visited:
        Number of tree nodes examined; the paper's O(gamma log B) cost.
    """

    covered: tuple[PartitionNode, ...]
    partial: tuple[PartitionNode, ...]
    nodes_visited: int

    @property
    def is_exact(self) -> bool:
        """True when no partial overlaps remain (the query aligns with the tree)."""
        return not self.partial


@dataclass(frozen=True)
class BatchFrontiers:
    """Raw vectorized MCF outcome for a batch of predicates.

    ``covered_mask`` / ``partial_mask`` have shape ``(n_nodes, n_queries)``
    over the geometry's node order (the sequential MCF visit order, so
    materializing members in index order reproduces sequential results bit
    for bit).  :meth:`result` / :meth:`results` build per-query
    :class:`MCFResult` objects on demand; vectorized consumers work from
    the masks directly.
    """

    geometry: "_TreeGeometry"
    covered_mask: np.ndarray
    partial_mask: np.ndarray
    nodes_visited: np.ndarray

    @property
    def n_queries(self) -> int:
        """Number of predicates the batch was classified for."""
        return self.covered_mask.shape[1]

    def result(self, j: int) -> MCFResult:
        """Materialize the ``j``-th predicate's :class:`MCFResult`."""
        nodes = self.geometry.nodes
        return MCFResult(
            covered=tuple(nodes[i] for i in np.flatnonzero(self.covered_mask[:, j])),
            partial=tuple(nodes[i] for i in np.flatnonzero(self.partial_mask[:, j])),
            nodes_visited=int(self.nodes_visited[j]),
        )

    def results(self) -> list[MCFResult]:
        """Materialize every predicate's :class:`MCFResult`, in order."""
        return [self.result(j) for j in range(self.n_queries)]


@dataclass(frozen=True)
class _TreeGeometry:
    """Flat, immutable geometry of a partition tree for batched MCF lookups.

    Attributes
    ----------
    nodes:
        Every tree node in the exact visit order of the sequential MCF
        descent (reverse-child DFS preorder), so emitting frontier members
        in index order reproduces the sequential node order bit for bit.
    parent:
        Index of each node's parent in ``nodes`` (-1 for the root).
    levels:
        Node indices grouped by depth, shallowest first.
    column_index:
        Column name -> column position of the bound arrays.
    lows / highs:
        Per-node box bounds, shape ``(n_nodes, n_columns)`` (±inf for
        unconstrained columns).
    is_leaf:
        Per-node leaf flag.
    """

    nodes: tuple[PartitionNode, ...]
    parent: np.ndarray
    levels: tuple[np.ndarray, ...]
    column_index: dict[str, int]
    lows: np.ndarray
    highs: np.ndarray
    is_leaf: np.ndarray
    leaf_index: np.ndarray

    @classmethod
    def build(cls, root: PartitionNode) -> "_TreeGeometry":
        nodes: list[PartitionNode] = []
        parents: list[int] = []
        depths: list[int] = []
        stack: list[tuple[PartitionNode, int, int]] = [(root, -1, 0)]
        while stack:
            node, parent_index, depth = stack.pop()
            index = len(nodes)
            nodes.append(node)
            parents.append(parent_index)
            depths.append(depth)
            stack.extend((child, index, depth + 1) for child in node.children)

        columns: dict[str, None] = {}
        for node in nodes:
            for column in node.box.columns:
                columns.setdefault(column, None)
        column_index = {column: c for c, column in enumerate(columns)}
        lows = np.full((len(nodes), len(column_index)), -np.inf)
        highs = np.full((len(nodes), len(column_index)), np.inf)
        for i, node in enumerate(nodes):
            for column, c in column_index.items():
                interval = node.box.interval(column)
                lows[i, c] = interval.low
                highs[i, c] = interval.high
        depth_array = np.asarray(depths)
        levels = tuple(
            np.flatnonzero(depth_array == depth)
            for depth in range(int(depth_array.max()) + 1)
        )
        return cls(
            nodes=tuple(nodes),
            parent=np.asarray(parents),
            levels=levels,
            column_index=column_index,
            lows=lows,
            highs=highs,
            is_leaf=np.fromiter(
                (node.is_leaf for node in nodes), dtype=bool, count=len(nodes)
            ),
            leaf_index=np.fromiter(
                (
                    node.leaf_index if node.leaf_index is not None else -1
                    for node in nodes
                ),
                dtype=np.int64,
                count=len(nodes),
            ),
        )

    def node_stat_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Fresh per-node ``(sum, count, min, max)`` statistic arrays.

        Read at call time — never cached — because dynamic updates mutate
        node statistics in place.
        """
        n = len(self.nodes)
        sums = np.fromiter((node.stats.sum for node in self.nodes), float, count=n)
        counts = np.fromiter((node.stats.count for node in self.nodes), float, count=n)
        mins = np.fromiter((node.stats.min for node in self.nodes), float, count=n)
        maxs = np.fromiter((node.stats.max for node in self.nodes), float, count=n)
        return sums, counts, mins, maxs


class PartitionTree:
    """A partition tree built bottom-up from a flat leaf partitioning.

    Parameters
    ----------
    root:
        Root node covering the whole dataset.
    leaves:
        The leaf nodes in leaf-index order.
    """

    def __init__(self, root: PartitionNode, leaves: Sequence[PartitionNode]) -> None:
        self._root = root
        self._leaves = list(leaves)
        self._geometry_cache: _TreeGeometry | None = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build_from_leaves(
        cls,
        leaf_boxes: Sequence[Box],
        leaf_stats: Sequence[PartitionStats],
        fanout: int = 2,
    ) -> "PartitionTree":
        """Build a balanced tree bottom-up by grouping consecutive leaves.

        Leaves are first ordered spatially (lexicographically by the lower
        bounds of their box intervals) so that siblings are geometrically
        adjacent and parent bounding boxes stay tight, then grouped ``fanout``
        at a time level by level until a single root remains.  Parent
        statistics are the merge of their children's statistics; parent boxes
        are the bounding box of their children (tight for contiguous 1-D
        partitions, conservative for k-d leaf sets — either way every tuple of
        a descendant is inside its ancestors' boxes, which is what the MCF
        pruning relies on).
        """
        if len(leaf_boxes) != len(leaf_stats):
            raise ValueError("leaf_boxes and leaf_stats must have the same length")
        if not leaf_boxes:
            raise ValueError("cannot build a tree without leaves")
        if fanout < 2:
            raise ValueError("fanout must be at least 2")

        order = sorted(
            range(len(leaf_boxes)),
            key=lambda i: tuple(
                (column, leaf_boxes[i].interval(column).low)
                for column in sorted(leaf_boxes[i].columns)
            ),
        )
        leaves = [
            PartitionNode(box=leaf_boxes[i], stats=leaf_stats[i], leaf_index=i)
            for i in order
        ]
        # Restore leaf_index to the caller's ordering (the sample list order).
        level: list[PartitionNode] = leaves
        while len(level) > 1:
            next_level: list[PartitionNode] = []
            for start in range(0, len(level), fanout):
                group = level[start : start + fanout]
                if len(group) == 1:
                    next_level.append(group[0])
                    continue
                stats = PartitionStats.empty()
                for node in group:
                    stats = stats.merge(node.stats)
                next_level.append(
                    PartitionNode(
                        box=_bounding_box([node.box for node in group]),
                        stats=stats,
                        children=list(group),
                    )
                )
            level = next_level
        root = level[0]
        ordered_leaves: list[PartitionNode] = [None] * len(
            leaf_boxes
        )  # type: ignore[list-item]
        for node in leaves:
            ordered_leaves[node.leaf_index] = node
        return cls(root=root, leaves=ordered_leaves)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def root(self) -> PartitionNode:
        """The root node (the whole dataset)."""
        return self._root

    @property
    def leaves(self) -> list[PartitionNode]:
        """Leaf nodes in leaf-index order."""
        return list(self._leaves)

    @property
    def n_leaves(self) -> int:
        """Number of leaf partitions."""
        return len(self._leaves)

    @property
    def n_nodes(self) -> int:
        """Total number of nodes in the tree."""
        return sum(1 for _ in self._root.iter_subtree())

    @property
    def height(self) -> int:
        """Length of the longest root-to-leaf path (root alone = 0)."""

        def depth(node: PartitionNode) -> int:
            if node.is_leaf:
                return 0
            return 1 + max(depth(child) for child in node.children)

        return depth(self._root)

    def validate(self) -> None:
        """Check the partition-tree invariants of Definition 3.1.

        Raises ``ValueError`` when a parent's statistics are not the merge of
        its children's or when a child's tuple count exceeds its parent's.
        """
        for node in self._root.iter_subtree():
            if node.is_leaf:
                continue
            merged = PartitionStats.empty()
            for child in node.children:
                merged = merged.merge(child.stats)
                if child.stats.count > node.stats.count:
                    raise ValueError("child partition larger than its parent")
            if merged.count != node.stats.count or not np.isclose(
                merged.sum, node.stats.sum
            ):
                raise ValueError("parent statistics are not the merge of the children")

    def storage_bytes(self) -> int:
        """Approximate bytes of the aggregate statistics stored in the tree."""
        # sum, count, min, max per node, 8 bytes each, plus box bounds.
        per_node = 4 * 8
        per_box = sum(2 * 8 for _ in self._root.box.columns)
        return self.n_nodes * (per_node + per_box)

    # ------------------------------------------------------------------
    # Persistence (array export / import)
    # ------------------------------------------------------------------
    def to_arrays(self) -> dict[str, np.ndarray]:
        """Export the full tree structure as flat numpy arrays.

        Nodes are laid out in pre-order; each node records its child count,
        its leaf index (-1 for internal nodes), its four aggregate statistics,
        and its box.  The encoding is exact — statistics round-trip bit for
        bit — so a reloaded synopsis answers queries identically.
        """
        nodes = list(self._root.iter_subtree())
        arrays = {
            "n_children": np.array(
                [len(node.children) for node in nodes], dtype=np.int64
            ),
            "leaf_index": np.array(
                [-1 if node.leaf_index is None else node.leaf_index for node in nodes],
                dtype=np.int64,
            ),
            "sum": np.array([node.stats.sum for node in nodes], dtype=float),
            "count": np.array([node.stats.count for node in nodes], dtype=np.int64),
            "min": np.array([node.stats.min for node in nodes], dtype=float),
            "max": np.array([node.stats.max for node in nodes], dtype=float),
        }
        for key, value in boxes_to_arrays([node.box for node in nodes]).items():
            arrays[f"box_{key}"] = value
        return arrays

    @classmethod
    def from_arrays(cls, arrays: dict[str, np.ndarray]) -> "PartitionTree":
        """Rebuild a tree previously exported with :meth:`to_arrays`."""
        n_children = np.asarray(arrays["n_children"], dtype=np.int64)
        leaf_index = np.asarray(arrays["leaf_index"], dtype=np.int64)
        sums = np.asarray(arrays["sum"], dtype=float)
        counts = np.asarray(arrays["count"], dtype=np.int64)
        mins = np.asarray(arrays["min"], dtype=float)
        maxs = np.asarray(arrays["max"], dtype=float)
        boxes = boxes_from_arrays(
            {
                key[len("box_") :]: value
                for key, value in arrays.items()
                if key.startswith("box_")
            }
        )
        if not len(n_children):
            raise ValueError("cannot rebuild a tree from empty arrays")

        cursor = 0

        def build() -> PartitionNode:
            nonlocal cursor
            index = cursor
            cursor += 1
            node = PartitionNode(
                box=boxes[index],
                stats=PartitionStats(
                    sum=float(sums[index]),
                    count=int(counts[index]),
                    min=float(mins[index]),
                    max=float(maxs[index]),
                ),
                leaf_index=None if leaf_index[index] < 0 else int(leaf_index[index]),
            )
            node.children = [build() for _ in range(int(n_children[index]))]
            return node

        root = build()
        if cursor != len(n_children):
            raise ValueError("tree arrays are inconsistent: trailing nodes")
        leaf_nodes = [
            node for node in root.iter_subtree() if node.leaf_index is not None
        ]
        leaves: list[PartitionNode] = [None] * len(
            leaf_nodes
        )  # type: ignore[list-item]
        for node in leaf_nodes:
            if (
                not 0 <= node.leaf_index < len(leaf_nodes)
                or leaves[node.leaf_index] is not None
            ):
                raise ValueError("tree arrays are inconsistent: bad leaf indices")
            leaves[node.leaf_index] = node
        return cls(root=root, leaves=leaves)

    # ------------------------------------------------------------------
    # MCF
    # ------------------------------------------------------------------
    def minimal_coverage_frontier(
        self,
        predicate: RectPredicate,
        zero_variance_rule: bool = False,
    ) -> MCFResult:
        """Run Algorithm 1 for a query predicate.

        Parameters
        ----------
        predicate:
            The query's rectangular predicate.
        zero_variance_rule:
            When True, any partially-overlapped node whose values all coincide
            (min == max) is treated as covered — valid for AVG queries only
            (Section 3.4).
        """
        covered: list[PartitionNode] = []
        partial: list[PartitionNode] = []
        visited = 0

        stack = [self._root]
        while stack:
            node = stack.pop()
            visited += 1
            relation = predicate.relation_to_box(node.box)
            if relation == Relation.DISJOINT:
                continue
            if relation == Relation.COVER:
                covered.append(node)
                continue
            if zero_variance_rule and node.stats.has_zero_variance:
                covered.append(node)
                continue
            if node.is_leaf:
                partial.append(node)
                continue
            stack.extend(node.children)
        return MCFResult(
            covered=tuple(covered), partial=tuple(partial), nodes_visited=visited
        )

    # ------------------------------------------------------------------
    # Batched MCF
    # ------------------------------------------------------------------
    def _geometry(self) -> "_TreeGeometry":
        """The cached flat node-geometry table for batched MCF lookups.

        Only immutable structure is cached (boxes, parent links, leaf
        flags, and the DFS visit order of :meth:`minimal_coverage_frontier`);
        node *statistics* mutate under dynamic updates and are always read
        fresh.
        """
        geometry = self._geometry_cache
        if geometry is None:
            geometry = _TreeGeometry.build(self._root)
            self._geometry_cache = geometry
        return geometry

    def geometry(self) -> "_TreeGeometry":
        """The cached flat node-geometry table (see :meth:`_geometry`).

        Public accessor used by the array-native execution core
        (:mod:`repro.core.soa`); rows are ordered by the DFS visit order of
        :meth:`minimal_coverage_frontier`, which every flat-array consumer
        relies on for order-preserving frontier extraction.
        """
        return self._geometry()

    def batch_coverage_frontiers(
        self,
        predicates: Sequence[RectPredicate],
        zero_variance_rules: Sequence[bool] | None = None,
        with_masks: bool = False,
    ) -> "list[MCFResult] | BatchFrontiers":
        """Run Algorithm 1 for a batch of predicates in one vectorized pass.

        Every tree node is classified against every predicate with a few
        broadcasted comparisons, then the per-node reachability of the
        sequential descent is replayed level by level — so each returned
        :class:`MCFResult` is *identical* to
        :meth:`minimal_coverage_frontier` on the same predicate, including
        the covered / partial node order (and therefore the floating-point
        summation order of every downstream estimator) and the
        ``nodes_visited`` telemetry.  Cost is O(nodes x batch) numpy work
        instead of O(visited) Python work per query, which is what makes
        micro-batched serving cheap.

        Parameters
        ----------
        predicates:
            The query predicates.
        zero_variance_rules:
            Per-predicate flag applying the AVG-only zero-variance descent
            rule (default: off for every predicate).
        with_masks:
            Return the raw :class:`BatchFrontiers` mask matrices instead of
            materialized per-query :class:`MCFResult` lists; fully
            vectorized consumers (:meth:`~repro.core.batching.BatchPlan.
            execute_vectorized`) assemble estimates straight from the masks
            and skip the per-node Python object handling entirely.
        """
        geometry = self._geometry()
        nodes = geometry.nodes
        n_nodes = len(nodes)
        n_queries = len(predicates)
        if n_queries == 0:
            empty = BatchFrontiers(
                geometry=geometry,
                covered_mask=np.zeros((n_nodes, 0), dtype=bool),
                partial_mask=np.zeros((n_nodes, 0), dtype=bool),
                nodes_visited=np.zeros(0, dtype=np.int64),
            )
            return empty if with_masks else []
        if zero_variance_rules is None:
            zv_flags = np.zeros(n_queries, dtype=bool)
        else:
            zv_flags = np.asarray(list(zero_variance_rules), dtype=bool)
            if zv_flags.shape[0] != n_queries:
                raise ValueError("one zero_variance_rule flag per predicate required")

        # Predicate bounds over the tree's columns; constraints on columns
        # the tree does not partition on can never be covered (an unbounded
        # box interval is not contained in a bounded one) but always overlap.
        column_index = geometry.column_index
        lows = np.full((n_queries, len(column_index)), -np.inf)
        highs = np.full((n_queries, len(column_index)), np.inf)
        never_covers = np.zeros(n_queries, dtype=bool)
        for j, predicate in enumerate(predicates):
            for column, low, high in predicate.canonical_key():
                c = column_index.get(column)
                if c is None:
                    never_covers[j] = True
                else:
                    lows[j, c] = low
                    highs[j, c] = high

        # relation matrices: (n_nodes, n_queries)
        node_lows = geometry.lows[:, :, None]  # (n_nodes, n_cols, 1)
        node_highs = geometry.highs[:, :, None]
        p_lows = lows.T[None, :, :]  # (1, n_cols, n_queries)
        p_highs = highs.T[None, :, :]
        disjoint = ((p_lows > node_highs) | (node_lows > p_highs)).any(axis=1)
        cover = ((p_lows <= node_lows) & (node_highs <= p_highs)).all(axis=1)
        cover &= ~never_covers[None, :]
        partial = ~cover & ~disjoint

        if np.any(zv_flags):
            zero_variance = np.fromiter(
                (node.stats.has_zero_variance for node in nodes),
                dtype=bool,
                count=n_nodes,
            )
            stops_covered = cover | (
                partial & zero_variance[:, None] & zv_flags[None, :]
            )
        else:
            stops_covered = cover

        # Replay the descent: a node is visited iff its parent descended
        # (was reached, partial, not stopped by cover/zero-variance, and
        # not a leaf).  Processing level by level keeps this fully array-at-
        # a-time.
        reached = np.zeros((n_nodes, n_queries), dtype=bool)
        descends = np.zeros((n_nodes, n_queries), dtype=bool)
        internal_partial = partial & ~stops_covered & ~geometry.is_leaf[:, None]
        for level in geometry.levels:
            if level[0] == 0:  # the root level
                reached[0] = True
            else:
                reached[level] = descends[geometry.parent[level]]
            descends[level] = reached[level] & internal_partial[level]

        covered_mask = reached & stops_covered
        partial_mask = reached & partial & ~stops_covered & geometry.is_leaf[:, None]
        visited = reached.sum(axis=0)

        frontiers = BatchFrontiers(
            geometry=geometry,
            covered_mask=covered_mask,
            partial_mask=partial_mask,
            nodes_visited=visited.astype(np.int64),
        )
        return frontiers if with_masks else frontiers.results()

    # ------------------------------------------------------------------
    # Dynamic maintenance helpers
    # ------------------------------------------------------------------
    def leaf_for_point(self, point: dict[str, float]) -> PartitionNode:
        """The leaf whose box contains the given predicate-column point."""
        node = self._root
        while not node.is_leaf:
            for child in node.children:
                if all(
                    child.box.interval(column).contains_value(value)
                    for column, value in point.items()
                    if column in child.box
                ):
                    node = child
                    break
            else:
                raise KeyError(f"no leaf contains point {point!r}")
        return node

    def path_to_leaf(self, leaf: PartitionNode) -> list[PartitionNode]:
        """Root-to-leaf path ending at ``leaf`` (used by dynamic updates)."""

        def find(node: PartitionNode) -> list[PartitionNode] | None:
            if node is leaf:
                return [node]
            for child in node.children:
                suffix = find(child)
                if suffix is not None:
                    return [node] + suffix
            return None

        path = find(self._root)
        if path is None:
            raise KeyError("leaf does not belong to this tree")
        return path


def _bounding_box(boxes: Sequence[Box]) -> Box:
    """The smallest box containing every box in ``boxes``."""
    columns = sorted({column for box in boxes for column in box.columns})
    intervals = {}
    for column in columns:
        lows = [box.interval(column).low for box in boxes]
        highs = [box.interval(column).high for box in boxes]
        intervals[column] = Interval(min(lows), max(highs))
    return Box(intervals)
