"""Common result types returned by every AQP synopsis.

All synopses (uniform sampling, stratified sampling, stratified aggregation,
AQP++, PASS, and the end-to-end baselines) return an :class:`AQPResult`, so
the evaluation harness can treat them interchangeably.  PASS additionally
fills the deterministic hard bounds and data-skipping statistics that only it
(and pure stratified aggregation) can provide.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["AQPResult", "LAMBDA_95", "LAMBDA_99"]

#: Normal-quantile multipliers for the confidence intervals used in the paper.
LAMBDA_95 = 1.96
LAMBDA_99 = 2.576


@dataclass(frozen=True)
class AQPResult:
    """The answer of an approximate query.

    Attributes
    ----------
    estimate:
        Point estimate of the aggregate.
    ci_half_width:
        Half-width of the CLT confidence interval (``lambda * sqrt(variance)``).
        Zero when the answer is exact, NaN when no estimate was possible
        (e.g. an empty sample for a very selective query).
    variance:
        Estimated variance of the point estimate (before multiplying by the
        confidence multiplier).
    hard_lower / hard_upper:
        Deterministic bounds from precomputed partition aggregates, when the
        synopsis can provide them (PASS / stratified aggregation); ``-inf`` /
        ``+inf`` otherwise.
    tuples_processed:
        Number of synopsis tuples (samples) touched while answering the
        query; the paper's effective-sample-size / latency proxy.
    tuples_skipped:
        Number of *dataset* tuples whose contribution was resolved from
        precomputed aggregates or skipped as irrelevant, i.e. never touched
        via samples.  Used for the skip-rate metric.
    exact:
        True when the answer is exact (all relevant partitions fully covered).
    """

    estimate: float
    ci_half_width: float = float("nan")
    variance: float = float("nan")
    hard_lower: float = -math.inf
    hard_upper: float = math.inf
    tuples_processed: int = 0
    tuples_skipped: int = 0
    exact: bool = False

    @property
    def ci_lower(self) -> float:
        """Lower end of the CLT confidence interval."""
        if math.isnan(self.ci_half_width):
            return float("nan")
        return self.estimate - self.ci_half_width

    @property
    def ci_upper(self) -> float:
        """Upper end of the CLT confidence interval."""
        if math.isnan(self.ci_half_width):
            return float("nan")
        return self.estimate + self.ci_half_width

    def relative_error(self, ground_truth: float) -> float:
        """|estimate - truth| / |truth| (NaN-safe; see metrics module)."""
        if ground_truth == 0.0:
            return 0.0 if self.estimate == 0.0 else float("inf")
        if math.isnan(self.estimate) or math.isnan(ground_truth):
            return float("nan")
        return abs(self.estimate - ground_truth) / abs(ground_truth)

    def ci_ratio(self, ground_truth: float) -> float:
        """Half CI width divided by the ground truth (the paper's CI ratio)."""
        if ground_truth == 0.0 or math.isnan(self.ci_half_width):
            return float("nan")
        return abs(self.ci_half_width) / abs(ground_truth)

    def contains_truth(self, ground_truth: float) -> bool:
        """True when the ground truth lies inside the CLT confidence interval."""
        if math.isnan(self.ci_half_width):
            return False
        return self.ci_lower <= ground_truth <= self.ci_upper

    def within_hard_bounds(self, ground_truth: float) -> bool:
        """True when the ground truth lies inside the deterministic bounds."""
        return self.hard_lower <= ground_truth <= self.hard_upper
