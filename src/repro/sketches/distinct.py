"""A mergeable distinct-count sketch (KMV — k minimum values).

Every value is hashed to 64 bits with the SplitMix64 finalizer (the same
mixing the distributed layer uses for shard routing, applied to the float's
bit pattern, so numerically equal values always collide on purpose); the
sketch keeps the ``k`` smallest *distinct* hashes it has ever seen:

* while fewer than ``k`` distinct hashes have been observed the sketch holds
  all of them and the distinct count is **exact** (64-bit hash collisions
  are negligible at any realistic cardinality);
* once saturated, the classic KMV estimator applies: if the ``k``-th
  smallest of ``D`` uniform hashes sits at normalized position ``u``, then
  ``D ≈ (k - 1) / u``, with relative standard error ``1 / sqrt(k - 2)``.

Merging two sketches keeps the ``k`` smallest distinct hashes of the union —
an operation that is **exactly associative and commutative** (the result
depends only on the union of the observed hash sets), the property the
hypothesis test layer asserts bit for bit.  NaN values are ignored (SQL NULL
semantics), and ``to_arrays`` / ``from_arrays`` round-trip exactly.
"""

from __future__ import annotations

import math

import numpy as np

from repro.data.hashing import splitmix64

__all__ = ["DistinctSketch"]

#: Default capacity: ~3.1% relative standard error once saturated, exact below.
DEFAULT_DISTINCT_K = 1024

_NO_HASHES = np.zeros(0, dtype=np.uint64)


class DistinctSketch:
    """Mergeable distinct-count summary of a multiset of float values.

    Parameters
    ----------
    k:
        Number of minimum hash values retained.  Distinct counts up to ``k``
        are exact; beyond, the estimate carries a relative standard error of
        ``1 / sqrt(k - 2)``.
    """

    __slots__ = ("_k", "_hashes", "_saturated")

    def __init__(self, k: int = DEFAULT_DISTINCT_K) -> None:
        if k < 16:
            raise ValueError("k must be at least 16")
        self._k = int(k)
        self._hashes = _NO_HASHES
        self._saturated = False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def k(self) -> int:
        """Retained-minimum capacity."""
        return self._k

    @property
    def is_exact(self) -> bool:
        """True while the sketch has seen at most ``k`` distinct values."""
        return not self._saturated

    def error_fraction(self, z: float = 3.0) -> float:
        """Documented relative error margin of :meth:`estimate`.

        ``z`` standard errors of the KMV estimator (``z / sqrt(k - 2)``), or
        exactly ``0.0`` while the sketch is unsaturated.  The default
        ``z = 3`` makes ``estimate * (1 ± margin)`` a high-probability bound
        pair (>99.7% per query under the uniform-hashing model).
        """
        if not self._saturated:
            return 0.0
        return float(z) / math.sqrt(self._k - 2)

    def storage_bytes(self) -> int:
        """Approximate footprint of the retained hashes."""
        return int(self._hashes.nbytes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DistinctSketch(k={self._k}, retained={self._hashes.size}, "
            f"saturated={self._saturated})"
        )

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def update(self, value: float) -> None:
        """Observe one value (NaN is ignored)."""
        self.update_array([value])

    def update_array(self, values: np.ndarray) -> None:
        """Observe an array of values (NaN entries ignored)."""
        values = np.asarray(values, dtype=float).ravel()
        if values.size and np.isnan(values).any():
            values = values[~np.isnan(values)]
        if values.size == 0:
            return
        self._absorb(np.unique(splitmix64(values)))

    # ------------------------------------------------------------------
    # Merge
    # ------------------------------------------------------------------
    def merge(self, other: "DistinctSketch") -> "DistinctSketch":
        """A new sketch summarizing the union of both inputs (inputs untouched).

        Keeps the ``k`` smallest distinct hashes of the union — exactly
        associative and commutative, so any merge order over any grouping of
        the same data yields bit-identical estimates.
        """
        if not isinstance(other, DistinctSketch):
            raise TypeError(f"cannot merge DistinctSketch with {type(other)!r}")
        if other._k != self._k:
            raise ValueError(
                f"cannot merge sketches with different k ({self._k} vs {other._k})"
            )
        out = DistinctSketch(self._k)
        out._hashes = self._hashes
        out._saturated = self._saturated or other._saturated
        out._absorb(other._hashes)
        return out

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def estimate(self) -> float:
        """Estimated number of distinct (non-NaN) values observed.

        Exact while unsaturated; the KMV estimator ``(k - 1) / u_k``
        afterwards, where ``u_k`` is the normalized ``k``-th smallest hash.
        """
        if not self._saturated:
            return float(self._hashes.size)
        kth = (float(self._hashes[-1]) + 1.0) / 2.0**64
        return (self._k - 1) / kth

    # ------------------------------------------------------------------
    # Persistence (array export / import)
    # ------------------------------------------------------------------
    def to_arrays(self) -> dict[str, np.ndarray]:
        """Export the sketch as flat numpy arrays (exact round trip)."""
        return {
            "hashes": self._hashes.copy(),
            "state": np.array([self._k, int(self._saturated)], dtype=np.int64),
        }

    @classmethod
    def from_arrays(cls, arrays: dict[str, np.ndarray]) -> "DistinctSketch":
        """Rebuild a sketch exported with :meth:`to_arrays`."""
        state = np.asarray(arrays["state"], dtype=np.int64)
        sketch = cls(int(state[0]))
        sketch._hashes = np.asarray(arrays["hashes"], dtype=np.uint64).copy()
        sketch._saturated = bool(state[1])
        return sketch

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _absorb(self, hashes: np.ndarray) -> None:
        """Fold sorted-unique hashes in, keeping the k smallest distinct."""
        if hashes.size == 0:
            return
        merged = np.union1d(self._hashes, hashes)
        if merged.size > self._k:
            # Anything trimmed now could never re-enter the k minima later,
            # so the retained set stays exactly "the k smallest ever seen".
            self._saturated = True
            merged = merged[: self._k]
        self._hashes = merged
