"""A mergeable quantile sketch with a certified rank-error bound.

The structure is the classic compactor hierarchy of the mergeable-summaries
line of work (Manku-Rajagopalan-Lindsay / Agarwal et al. / KLL): level ``h``
holds items of weight ``2^h``; when a level outgrows its capacity ``k`` it is
*compacted* — sorted, and every other item promoted to level ``h + 1`` at
twice the weight.  Compacting a sorted buffer of items of weight ``w``
changes the rank of any query point by at most ``w``, so the sketch can
maintain a *certified* additive rank-error bound by simply accumulating
``2^h`` per compaction (:meth:`QuantileSketch.rank_error_bound`).  A sketch
that never compacted holds the exact input multiset and answers exactly.

Two deliberate departures from textbook KLL keep the behaviour reproducible
for the property-test layer:

* compaction keeps the even- or odd-indexed items *deterministically*,
  alternating by a per-level compaction counter instead of a coin flip —
  merging is therefore exactly commutative (``a.merge(b)`` and
  ``b.merge(a)`` answer identically) and associative up to the certified
  bound, with no RNG state to persist;
* every level has the same capacity ``k`` (no geometric decay), giving the
  simple worst-case bound ``rank error <= L * n / k`` over ``L`` levels —
  loose against tuned KLL but certified, and the sketch reports the much
  tighter bound it actually accumulated.

Weighted insertion (:meth:`QuantileSketch.update_weighted`) places items
directly at the levels of the binary decomposition of their weight; the PASS
query path uses it to fold the matched sample of a partially overlapped leaf
into a frontier union at its estimated population weight.

NaN values are ignored on insertion (SQL NULL semantics).
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["QuantileSketch"]

#: Default level capacity; ~0.5-1.5% certified rank error at 10^5-10^6 items.
DEFAULT_QUANTILE_K = 200

_EMPTY = np.zeros(0, dtype=float)


class QuantileSketch:
    """Mergeable rank/quantile summary of a multiset of float values.

    Parameters
    ----------
    k:
        Capacity of every compactor level.  Larger ``k`` means more storage
        (``O(k log(n / k))`` floats) and a smaller rank error
        (``O(log(n / k) * n / k)`` worst case, certified per instance by
        :meth:`rank_error_bound`).
    """

    __slots__ = ("_k", "_levels", "_compactions", "_n", "_rank_error", "_min", "_max")

    def __init__(self, k: int = DEFAULT_QUANTILE_K) -> None:
        if k < 8:
            raise ValueError("k must be at least 8")
        self._k = int(k)
        self._levels: list[np.ndarray] = [_EMPTY]
        self._compactions: list[int] = [0]
        self._n = 0
        self._rank_error = 0
        self._min = math.inf
        self._max = -math.inf

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def k(self) -> int:
        """Per-level capacity."""
        return self._k

    @property
    def n(self) -> int:
        """Total weight (number of represented items, NaN excluded)."""
        return self._n

    @property
    def is_exact(self) -> bool:
        """True while the sketch still holds the exact input multiset."""
        return self._rank_error == 0

    def rank_error_bound(self) -> int:
        """Certified additive rank-error bound (in items).

        For any value ``v``, the estimated rank :meth:`rank` differs from the
        true rank of ``v`` in the inserted multiset by at most this many
        items.  The bound is deterministic: it accumulates the exact
        worst-case error (``2^h``) of every compaction performed.
        """
        return self._rank_error

    def storage_bytes(self) -> int:
        """Approximate footprint of the retained items."""
        return sum(level.nbytes for level in self._levels)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"QuantileSketch(k={self._k}, n={self._n}, "
            f"items={sum(level.size for level in self._levels)}, "
            f"rank_error<={self._rank_error})"
        )

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def update(self, value: float) -> None:
        """Insert one value (NaN is ignored)."""
        self.update_array([value])

    def update_array(self, values: np.ndarray) -> None:
        """Insert an array of values at weight 1 each (NaN entries ignored)."""
        values = np.asarray(values, dtype=float).ravel()
        if values.size and np.isnan(values).any():
            values = values[~np.isnan(values)]
        if values.size == 0:
            return
        self._min = min(self._min, float(values.min()))
        self._max = max(self._max, float(values.max()))
        self._n += int(values.size)
        self._levels[0] = np.concatenate([self._levels[0], values])
        self._compress()

    def update_weighted(self, values: np.ndarray, total_weight: int) -> None:
        """Insert ``values`` carrying ``total_weight`` items of mass in total.

        The weight splits as evenly as possible across the values (the first
        ``total_weight mod len(values)`` of the *sorted* values carry one
        extra unit, a deterministic rule), and each value is placed at the
        levels of its weight's binary decomposition — so total represented
        weight is preserved exactly and no rank error is introduced beyond
        later compactions.  With ``total_weight < len(values)`` only the
        first ``total_weight`` sorted values are kept (weight 1 each).
        """
        values = np.asarray(values, dtype=float).ravel()
        if values.size and np.isnan(values).any():
            values = values[~np.isnan(values)]
        total_weight = int(total_weight)
        if values.size == 0 or total_weight <= 0:
            return
        values = np.sort(values)
        base, extra = divmod(total_weight, values.size)
        weights = np.full(values.size, base, dtype=np.int64)
        weights[:extra] += 1
        self._min = min(self._min, float(values[0]))
        self._max = max(self._max, float(values[-1]))
        self._n += total_weight
        level = 0
        while np.any(weights):
            chosen = values[(weights & 1).astype(bool)]
            if chosen.size:
                self._ensure_level(level)
                self._levels[level] = np.concatenate([self._levels[level], chosen])
            weights >>= 1
            level += 1
        self._compress()

    # ------------------------------------------------------------------
    # Merge
    # ------------------------------------------------------------------
    def merge(self, other: "QuantileSketch") -> "QuantileSketch":
        """A new sketch summarizing the union of both inputs (inputs untouched).

        Level buffers concatenate, compaction counters / weights / certified
        errors add, and over-capacity levels compact.  The operation is
        exactly commutative; different merge orders may compact at different
        moments, so associativity holds up to the certified
        :meth:`rank_error_bound` of the results (the property the test layer
        asserts).
        """
        if not isinstance(other, QuantileSketch):
            raise TypeError(f"cannot merge QuantileSketch with {type(other)!r}")
        if other._k != self._k:
            raise ValueError(
                f"cannot merge sketches with different k ({self._k} vs {other._k})"
            )
        out = QuantileSketch(self._k)
        n_levels = max(len(self._levels), len(other._levels))
        out._levels = []
        out._compactions = []
        for level in range(n_levels):
            mine = self._levels[level] if level < len(self._levels) else _EMPTY
            theirs = other._levels[level] if level < len(other._levels) else _EMPTY
            out._levels.append(np.concatenate([mine, theirs]))
            out._compactions.append(
                (self._compactions[level] if level < len(self._compactions) else 0)
                + (other._compactions[level] if level < len(other._compactions) else 0)
            )
        out._n = self._n + other._n
        out._rank_error = self._rank_error + other._rank_error
        out._min = min(self._min, other._min)
        out._max = max(self._max, other._max)
        out._compress()
        return out

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def rank(self, value: float) -> int:
        """Estimated number of inserted items ``<= value``.

        Within :meth:`rank_error_bound` of the true rank.
        """
        values, cumulative = self._sorted_weighted()
        if values.size == 0:
            return 0
        index = int(np.searchsorted(values, value, side="right"))
        return 0 if index == 0 else int(cumulative[index - 1])

    def value_at_rank(self, rank: float) -> float:
        """Smallest retained value whose cumulative weight reaches ``rank``.

        ``rank`` is clipped into ``[1, n]``; NaN for an empty sketch.
        """
        values, cumulative = self._sorted_weighted()
        if values.size == 0:
            return float("nan")
        rank = min(max(float(rank), 1.0), float(cumulative[-1]))
        index = int(np.searchsorted(cumulative, rank, side="left"))
        return float(values[min(index, values.size - 1)])

    def quantile(self, q: float) -> float:
        """The value at quantile ``q`` (rank ``ceil(q * n)``, clipped to >= 1).

        The estimate is always one of the inserted values; its true rank in
        the inserted multiset is within :meth:`rank_error_bound` of the
        target.  NaN for an empty sketch.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self._n == 0:
            return float("nan")
        target = max(1, min(math.ceil(q * self._n), self._n))
        return self.value_at_rank(target)

    @property
    def min(self) -> float:
        """Exact smallest inserted value (NaN when empty).

        Tracked outside the compactors, so it stays exact even after
        compactions drop the extreme items.
        """
        return float(self._min) if self._n else float("nan")

    @property
    def max(self) -> float:
        """Exact largest inserted value (NaN when empty)."""
        return float(self._max) if self._n else float("nan")

    # ------------------------------------------------------------------
    # Persistence (array export / import)
    # ------------------------------------------------------------------
    def to_arrays(self) -> dict[str, np.ndarray]:
        """Export the sketch as flat numpy arrays (exact round trip)."""
        sizes = [level.size for level in self._levels]
        return {
            "items": (
                np.concatenate(self._levels) if any(sizes) else _EMPTY.copy()
            ),
            "offsets": np.concatenate([[0], np.cumsum(sizes)]).astype(np.int64),
            "compactions": np.asarray(self._compactions, dtype=np.int64),
            "state": np.array([self._k, self._n, self._rank_error], dtype=np.int64),
            "extrema": np.array([self._min, self._max], dtype=float),
        }

    @classmethod
    def from_arrays(cls, arrays: dict[str, np.ndarray]) -> "QuantileSketch":
        """Rebuild a sketch exported with :meth:`to_arrays`."""
        state = np.asarray(arrays["state"], dtype=np.int64)
        sketch = cls(int(state[0]))
        items = np.asarray(arrays["items"], dtype=float)
        offsets = np.asarray(arrays["offsets"], dtype=np.int64)
        sketch._levels = [
            items[int(offsets[i]) : int(offsets[i + 1])].copy()
            for i in range(offsets.size - 1)
        ]
        sketch._compactions = [
            int(c) for c in np.asarray(arrays["compactions"], dtype=np.int64)
        ]
        if not sketch._levels:
            sketch._levels = [_EMPTY]
            sketch._compactions = [0]
        sketch._n = int(state[1])
        sketch._rank_error = int(state[2])
        extrema = np.asarray(arrays["extrema"], dtype=float)
        sketch._min = float(extrema[0])
        sketch._max = float(extrema[1])
        return sketch

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _ensure_level(self, level: int) -> None:
        while len(self._levels) <= level:
            self._levels.append(_EMPTY)
            self._compactions.append(0)

    def _sorted_weighted(self) -> tuple[np.ndarray, np.ndarray]:
        """Retained values sorted ascending, with cumulative weights."""
        sizes = [level.size for level in self._levels]
        if not any(sizes):
            return _EMPTY, np.zeros(0, dtype=np.int64)
        values = np.concatenate(self._levels)
        weights = np.concatenate(
            [
                np.full(level.size, np.int64(1) << h, dtype=np.int64)
                for h, level in enumerate(self._levels)
            ]
        )
        order = np.argsort(values, kind="stable")
        return values[order], np.cumsum(weights[order])

    def _compress(self) -> None:
        """Compact every over-capacity level, cascading upward."""
        level = 0
        while level < len(self._levels):
            buffer = self._levels[level]
            if buffer.size <= self._k:
                level += 1
                continue
            ordered = np.sort(buffer, kind="stable")
            parity = self._compactions[level] & 1
            if ordered.size & 1:
                # Hold one item back (alternating ends) so the compaction
                # input has even length and weight is conserved exactly.
                if parity:
                    held, ordered = ordered[:1], ordered[1:]
                else:
                    held, ordered = ordered[-1:], ordered[:-1]
            else:
                held = _EMPTY
            promoted = ordered[parity::2]
            self._ensure_level(level + 1)
            self._levels[level] = held.copy()
            self._levels[level + 1] = np.concatenate(
                [self._levels[level + 1], promoted]
            )
            self._compactions[level] += 1
            # Compacting items of weight 2^level shifts any rank by <= 2^level.
            self._rank_error += 1 << level
            level += 1
