"""Mergeable sketch summaries for quantile and distinct-count aggregates.

The classic PASS aggregates (SUM / COUNT / AVG / MIN / MAX) merge exactly
across partitions and shards because their sufficient statistics are linear.
Percentiles and distinct counts are not linear, but they admit *mergeable
sketches* — compact summaries ``S(A)`` with a ``merge`` operation satisfying
``estimate(merge(S(A), S(B)))`` within the same error bound as
``estimate(S(A ∪ B)))`` — which preserves the scatter-gather merge discipline
of the distributed layer:

* :class:`~repro.sketches.quantile.QuantileSketch` — a KLL/MRL-style
  compactor hierarchy answering rank / quantile queries with a *certified*
  additive rank-error bound the sketch maintains itself;
* :class:`~repro.sketches.distinct.DistinctSketch` — a KMV (k-minimum-values)
  summary answering distinct-count queries, exact until it has seen more
  than ``k`` distinct values and within a documented relative error after;
* :class:`~repro.sketches.union.LeafSketches` — the pair of sketches a PASS
  build attaches to every leaf partition;
* :class:`~repro.sketches.union.QuantileSketchUnion` /
  :class:`~repro.sketches.union.DistinctSketchUnion` — the frontier-union
  form a synopsis reduces a query to: mergeable across shards, convertible
  to an :class:`~repro.result.AQPResult` by
  :func:`repro.core.pass_synopsis.sketch_union_result`.

Both sketches persist through ``to_arrays`` / ``from_arrays`` exactly (the
round trip is bit-identical), ignore NaN inputs (SQL NULL semantics), and
are deterministic: merging is exactly commutative, and associative up to the
certified error bound (bit-exact for :class:`DistinctSketch`).
"""

from repro.sketches.distinct import DistinctSketch
from repro.sketches.quantile import QuantileSketch
from repro.sketches.union import (
    DistinctSketchUnion,
    LeafSketches,
    QuantileSketchUnion,
)

__all__ = [
    "QuantileSketch",
    "DistinctSketch",
    "LeafSketches",
    "QuantileSketchUnion",
    "DistinctSketchUnion",
]
