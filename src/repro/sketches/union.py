"""Per-leaf sketch attachment and mergeable frontier unions.

:class:`LeafSketches` is what the builder attaches to every leaf partition:
one quantile sketch and one distinct-count sketch over the leaf's aggregation
values.  A query then reduces, along its MCF frontier, to a *union* object:

* fully covered nodes contribute the merged sketches of their leaves
  (an exact summary of the region's rows, up to sketch error);
* partially overlapped leaves contribute through their stratified sample
  (quantiles: the matched sample values re-weighted to the leaf's estimated
  matching population; distinct counts: a lower sketch from the matched
  samples and an upper sketch from the whole leaf) plus a *boundary weight*
  — the total population of partial leaves — that widens the certified
  bounds to cover any misattribution at the predicate boundary.

Union objects are mergeable with the same discipline as the sketches
themselves, which is exactly what the distributed scatter-gather path needs:
each shard reduces its frontier to a union, the gather phase merges the
unions, and :func:`repro.core.pass_synopsis.sketch_union_result` turns the
merged union into an :class:`~repro.result.AQPResult` — so a sharded answer
is, by construction, the same sketch algebra as a single-synopsis answer.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.sketches.distinct import DEFAULT_DISTINCT_K, DistinctSketch
from repro.sketches.quantile import DEFAULT_QUANTILE_K, QuantileSketch

__all__ = ["LeafSketches", "QuantileSketchUnion", "DistinctSketchUnion"]


@dataclass
class LeafSketches:
    """The mergeable sketches attached to one leaf partition."""

    quantile: QuantileSketch
    distinct: DistinctSketch

    @classmethod
    def from_values(
        cls,
        values: np.ndarray,
        quantile_k: int = DEFAULT_QUANTILE_K,
        distinct_k: int = DEFAULT_DISTINCT_K,
    ) -> "LeafSketches":
        """Build both sketches over a leaf's aggregation values (NaN ignored)."""
        quantile = QuantileSketch(quantile_k)
        quantile.update_array(values)
        distinct = DistinctSketch(distinct_k)
        distinct.update_array(values)
        return cls(quantile=quantile, distinct=distinct)

    def storage_bytes(self) -> int:
        """Approximate combined footprint of both sketches."""
        return self.quantile.storage_bytes() + self.distinct.storage_bytes()

    def to_arrays(self) -> dict[str, np.ndarray]:
        """Export both sketches as namespaced flat arrays (exact round trip)."""
        arrays: dict[str, np.ndarray] = {}
        for key, value in self.quantile.to_arrays().items():
            arrays[f"quantile/{key}"] = value
        for key, value in self.distinct.to_arrays().items():
            arrays[f"distinct/{key}"] = value
        return arrays

    @classmethod
    def from_arrays(cls, arrays: dict[str, np.ndarray]) -> "LeafSketches":
        """Rebuild an attachment exported with :meth:`to_arrays`."""
        quantile = {
            key[len("quantile/") :]: value
            for key, value in arrays.items()
            if key.startswith("quantile/")
        }
        distinct = {
            key[len("distinct/") :]: value
            for key, value in arrays.items()
            if key.startswith("distinct/")
        }
        return cls(
            quantile=QuantileSketch.from_arrays(quantile),
            distinct=DistinctSketch.from_arrays(distinct),
        )


@dataclass
class QuantileSketchUnion:
    """A QUANTILE query reduced to one mergeable sketch plus boundary slack.

    Attributes
    ----------
    sketch:
        Merged quantile summary: exact leaf sketches of the covered region
        plus the re-weighted matched samples of partially overlapped leaves.
    boundary_weight:
        Total population of the partially overlapped leaves.  Any rank can be
        misattributed by at most this much mass (wrong sample-weight
        estimate, wrong values at the boundary) plus as much again for the
        shifted rank target, so certified bounds widen by
        ``2 * boundary_weight``.
    value_floor / value_ceil:
        Extrema of the partial leaves' node statistics (``+inf`` / ``-inf``
        when there are none): deterministic envelopes for boundary mass the
        sketch never saw.
    processed:
        Sample tuples touched while reducing the query.
    """

    sketch: QuantileSketch
    boundary_weight: int = 0
    value_floor: float = math.inf
    value_ceil: float = -math.inf
    processed: int = 0

    def rank_error_bound(self) -> int:
        """Certified additive rank-error bound of the reduced query."""
        return self.sketch.rank_error_bound() + 2 * self.boundary_weight

    @property
    def is_exact(self) -> bool:
        """True when the union provably holds the exact matching multiset."""
        return self.boundary_weight == 0 and self.sketch.is_exact

    def merge(self, other: "QuantileSketchUnion") -> "QuantileSketchUnion":
        """Union of two reduced queries (the scatter-gather merge)."""
        return QuantileSketchUnion(
            sketch=self.sketch.merge(other.sketch),
            boundary_weight=self.boundary_weight + other.boundary_weight,
            value_floor=min(self.value_floor, other.value_floor),
            value_ceil=max(self.value_ceil, other.value_ceil),
            processed=self.processed + other.processed,
        )


@dataclass
class DistinctSketchUnion:
    """A COUNT_DISTINCT query reduced to a lower / upper sketch envelope.

    Attributes
    ----------
    lower:
        Covered-region leaf sketches merged with the *matched sample values*
        of partial leaves — a subset of the matching rows, so its estimate
        lower-bounds the true distinct count (within sketch error).
    upper:
        Covered-region leaf sketches merged with the *entire* sketches of
        partial leaves — a superset of the matching rows, so its estimate
        upper-bounds the true distinct count (within sketch error).  With no
        partial leaves both sketches coincide and the answer is a plain
        mergeable estimate.
    boundary_weight / processed:
        As in :class:`QuantileSketchUnion`.
    """

    lower: DistinctSketch
    upper: DistinctSketch
    boundary_weight: int = 0
    processed: int = 0

    @property
    def is_exact(self) -> bool:
        """True when the envelope collapses to an exact distinct count."""
        return self.boundary_weight == 0 and self.upper.is_exact

    def merge(self, other: "DistinctSketchUnion") -> "DistinctSketchUnion":
        """Union of two reduced queries (the scatter-gather merge)."""
        return DistinctSketchUnion(
            lower=self.lower.merge(other.lower),
            upper=self.upper.merge(other.upper),
            boundary_weight=self.boundary_weight + other.boundary_weight,
            processed=self.processed + other.processed,
        )
