"""Experiment harness: build synopses, run workloads, collect comparable rows.

The harness factors out the boilerplate shared by every experiment: load a
dataset, generate a workload, compute ground truths once, build each
competing synopsis while timing the construction, evaluate the workload, and
return uniform :class:`SynopsisEvaluation` rows the reporting module can
render.

Sketch-aggregate workloads (QUANTILE / COUNT_DISTINCT, see
:mod:`repro.sketches`) evaluate through every path here unchanged: the
exact engine computes their NaN-aware ground truths (the QUANTILE parameter
travels on each query), and the relative-error / hard-bound metrics apply
as-is — only the CLT-interval metrics (``ci_ratio`` and friends) come back
NaN, because sketch answers carry certified bounds instead of variances.
Generate such workloads with
:func:`repro.query.workload.random_range_queries` (``agg="QUANTILE",
quantile=0.95`` or ``agg="COUNT_DISTINCT"``).
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Sequence

import numpy as np

from repro.data.loaders import DatasetSpec, load_dataset
from repro.evaluation.metrics import QueryRecord, WorkloadMetrics, evaluate_workload
from repro.query.groupby import GroupByPlan, GroupByQuery
from repro.query.query import AggregateQuery, ExactEngine
from repro.query.workload import WorkloadSpec

__all__ = [
    "SynopsisEvaluation",
    "ComparisonRun",
    "run_comparison",
    "ground_truths",
    "evaluate_served_workload",
    "evaluate_sharded_workload",
    "evaluate_grouped_workload",
    "AsyncWorkloadReport",
    "arrival_offsets",
    "evaluate_async_workload",
]


@dataclass(frozen=True)
class SynopsisEvaluation:
    """One synopsis' build cost, footprint, and workload metrics."""

    name: str
    build_seconds: float
    storage_bytes: int
    metrics: WorkloadMetrics

    @property
    def storage_mb(self) -> float:
        """Synopsis footprint in megabytes."""
        return self.storage_bytes / (1024.0 * 1024.0)


@dataclass(frozen=True)
class ComparisonRun:
    """Every synopsis' evaluation on one (dataset, workload) pair."""

    dataset: str
    workload: WorkloadSpec
    evaluations: tuple[SynopsisEvaluation, ...]

    def evaluation(self, name: str) -> SynopsisEvaluation:
        """Look up one synopsis' evaluation by name."""
        for evaluation in self.evaluations:
            if evaluation.name == name:
                return evaluation
        known = ", ".join(e.name for e in self.evaluations)
        raise KeyError(f"no evaluation named {name!r}; available: {known}")


def ground_truths(
    engine: ExactEngine, queries: Iterable[AggregateQuery]
) -> list[float]:
    """Exact answers for a workload (computed once, shared across synopses)."""
    return [engine.execute(query) for query in queries]


def evaluate_served_workload(
    serving_engine,
    queries: Iterable[AggregateQuery],
    engine: ExactEngine,
    ground_truth: Sequence[float] | None = None,
    table: str | None = None,
    batch: bool = False,
) -> WorkloadMetrics:
    """Evaluate a workload through a serving engine (served-mode path).

    The synopsis-direct path (:func:`~repro.evaluation.metrics.evaluate_workload`)
    measures a synopsis in isolation; this path measures what a client of the
    serving layer observes — routing, result caching, and (optionally) batch
    execution included.  Cache hits therefore show up as near-zero latencies
    on repeated queries.

    Parameters
    ----------
    serving_engine:
        A :class:`repro.serving.engine.ServingEngine`.
    queries / engine / ground_truth:
        As in :func:`~repro.evaluation.metrics.evaluate_workload`.
    table:
        Optional table name forwarded to the serving engine's router.
    batch:
        Execute the whole workload through ``execute_batch`` (per-query
        latency is then the batch average) instead of query by query.
    """
    return _evaluate_timed_workload(
        queries,
        engine,
        ground_truth,
        batch,
        run_one=lambda query: serving_engine.execute(query, table=table),
        run_batch=lambda batch_queries: serving_engine.execute_batch(
            batch_queries, table=table
        ),
    )


def evaluate_sharded_workload(
    sharded,
    queries: Iterable[AggregateQuery],
    engine: ExactEngine,
    ground_truth: Sequence[float] | None = None,
    batch: bool = False,
) -> WorkloadMetrics:
    """Evaluate a workload through a sharded synopsis (sharded mode).

    Queries run through the scatter-gather path of a
    :class:`~repro.distributed.sharded.ShardedSynopsis`; per-query latency
    therefore includes shard pruning and the merge of per-shard estimates.

    Parameters
    ----------
    sharded:
        A :class:`~repro.distributed.sharded.ShardedSynopsis`.
    queries / engine / ground_truth:
        As in :func:`~repro.evaluation.metrics.evaluate_workload`.
    batch:
        Execute the whole workload through
        :meth:`~repro.distributed.sharded.ShardedSynopsis.query_batch`
        (per-query latency is then the batch average) instead of query by
        query.
    """
    return _evaluate_timed_workload(
        queries,
        engine,
        ground_truth,
        batch,
        run_one=sharded.query,
        run_batch=sharded.query_batch,
    )


def evaluate_grouped_workload(
    executor,
    groupby: "GroupByQuery | GroupByPlan",
    engine: ExactEngine,
    ground_truth: Sequence[float] | None = None,
    table: str | None = None,
) -> WorkloadMetrics:
    """Evaluate a group-by query through a grouped executor (grouped mode).

    The group-by query compiles into its cell-major batch (distinct values
    resolve from the exact engine's table), ground truths are computed per
    compiled (cell, aggregate) query, and the whole grouped result is
    produced in one executor call — so per-query latency is the grouped
    batch average, the number the grouped serving path is sized by.

    Parameters
    ----------
    executor:
        A :class:`~repro.serving.engine.ServingEngine` (routed + cached
        grouped serving), a
        :class:`~repro.distributed.sharded.ShardedSynopsis` (scatter-gather
        grouping), or a :class:`~repro.core.pass_synopsis.PASSSynopsis`
        (single-synopsis shared-mask grouping).
    groupby:
        The group-by query, or an already compiled plan.
    engine / ground_truth:
        As in :func:`~repro.evaluation.metrics.evaluate_workload`; truths
        align with the plan's cell-major ``queries()`` order.
    table:
        Optional table name forwarded to serving-engine routing.
    """
    plan = (
        groupby.compile(distinct_source=engine.table)
        if isinstance(groupby, GroupByQuery)
        else groupby
    )
    flat = plan.queries()
    if ground_truth is None:
        ground_truth = ground_truths(engine, flat)
    if len(ground_truth) != len(flat):
        raise ValueError("ground_truth length must match the compiled batch")

    start = time.perf_counter()
    if hasattr(executor, "execute_grouped"):
        grouped = executor.execute_grouped(plan, table=table)
    elif hasattr(executor, "query_grouped"):
        grouped = executor.query_grouped(plan)
    else:
        from repro.core.batching import grouped_query

        grouped = grouped_query(executor, plan)
    per_query = (time.perf_counter() - start) / max(1, len(flat))

    records = []
    position = 0
    for index, _ in plan.live_cells():
        for agg_index in range(len(plan.aggregates)):
            records.append(
                QueryRecord(
                    query=flat[position],
                    truth=ground_truth[position],
                    result=grouped.cells[index][agg_index],
                    latency_seconds=per_query,
                )
            )
            position += 1
    return WorkloadMetrics.from_records(records)


@dataclass(frozen=True)
class AsyncWorkloadReport:
    """What an open-loop client population observed from the async tier.

    Attributes
    ----------
    n_requests / completed / rejected:
        Offered requests, requests answered, and requests shed by admission
        control (:class:`~repro.serving.scheduler.Overloaded`).
    coalesced:
        Completed requests that shared another request's in-flight
        execution.
    duration_seconds:
        Wall clock from the first scheduled arrival to the last completion.
    offered_qps / achieved_qps:
        The configured arrival rate and ``completed / duration``.
    p50_latency_ms / p99_latency_ms:
        Percentiles of per-request latency measured from the *scheduled*
        arrival time (open-loop convention: queueing delay caused by an
        overloaded server counts against it), NaN when nothing completed.
    """

    n_requests: int
    completed: int
    rejected: int
    coalesced: int
    duration_seconds: float
    offered_qps: float
    achieved_qps: float
    p50_latency_ms: float
    p99_latency_ms: float


#: Supported open-loop arrival processes.
ARRIVAL_PROCESSES = ("poisson", "bursty", "adversarial")


def arrival_offsets(
    process: str,
    n_requests: int,
    rate: float,
    rng: np.random.Generator,
    burst_size: int = 16,
) -> np.ndarray:
    """Arrival-time offsets (seconds from epoch start) for an open-loop run.

    ``poisson`` draws exponential inter-arrival gaps (memoryless traffic at
    the given mean rate); ``bursty`` releases ``burst_size`` requests
    back-to-back with exponential gaps between bursts (same mean rate, but
    the instantaneous load spikes stress the batch window); ``adversarial``
    is the bursty timeline — the adversarial part is what the requests
    *are*: :func:`evaluate_async_workload` makes every request inside a
    burst the same canonical query, the duplicate-stampede worst case for
    an uncoalesced server.
    """
    if process not in ARRIVAL_PROCESSES:
        raise ValueError(
            f"unknown arrival process {process!r}; expected one of "
            f"{ARRIVAL_PROCESSES}"
        )
    if rate <= 0:
        raise ValueError("rate must be positive")
    if process == "poisson":
        return np.cumsum(rng.exponential(1.0 / rate, size=n_requests))
    if burst_size <= 0:
        raise ValueError("burst_size must be positive")
    n_bursts = -(-n_requests // burst_size)
    burst_starts = np.cumsum(rng.exponential(burst_size / rate, size=n_bursts))
    offsets = np.repeat(burst_starts, burst_size)[:n_requests]
    return offsets


def evaluate_async_workload(
    async_engine,
    queries: Sequence[AggregateQuery],
    rate: float,
    n_requests: int | None = None,
    arrival: str = "poisson",
    duplicate_ratio: float = 0.0,
    burst_size: int = 16,
    seed: int = 0,
    table: str | None = None,
) -> AsyncWorkloadReport:
    """Drive an async serving tier with an open-loop arrival process.

    Open-loop means arrivals are scheduled ahead of time at the offered
    rate and do **not** wait for earlier requests to finish — exactly the
    regime where admission control and micro-batching matter.  The driver
    owns the event loop (``asyncio.run``), so it composes with the rest of
    the synchronous evaluation harness.

    Parameters
    ----------
    async_engine:
        A **not yet started** :class:`~repro.serving.async_engine.
        AsyncServingEngine`; the driver starts and stops it around the run.
    queries:
        The pool of distinct canonical queries the workload draws from.
    rate:
        Offered arrival rate, requests/second.
    n_requests:
        Total requests to offer (defaults to ``len(queries)``).
    arrival:
        ``"poisson"``, ``"bursty"``, or ``"adversarial"`` (see
        :func:`arrival_offsets`).  Adversarial runs make every request in a
        burst the same query, so they measure the coalescing path
        regardless of ``duplicate_ratio``.
    duplicate_ratio:
        For poisson / bursty arrivals: probability that a request repeats
        the previous request's query instead of advancing through the pool.
    burst_size:
        Burst length for the bursty / adversarial processes.
    seed / table:
        Workload RNG seed, and the routing table forwarded per request.
    """
    from repro.serving.scheduler import Overloaded

    queries = list(queries)
    if not queries:
        raise ValueError("need at least one query")
    if not 0.0 <= duplicate_ratio <= 1.0:
        raise ValueError("duplicate_ratio must be in [0, 1]")
    total = len(queries) if n_requests is None else n_requests
    rng = np.random.default_rng(seed)
    offsets = arrival_offsets(arrival, total, rate, rng, burst_size=burst_size)

    issued: list[AggregateQuery] = []
    if arrival == "adversarial":
        # Every request of a burst duplicates the burst's canonical query.
        for position in range(total):
            issued.append(queries[(position // burst_size) % len(queries)])
    else:
        cursor = 0
        for position in range(total):
            if position > 0 and rng.random() < duplicate_ratio:
                issued.append(issued[-1])
            else:
                issued.append(queries[cursor % len(queries)])
                cursor += 1

    latencies: list[float] = []
    rejected = 0

    async def drive() -> float:
        nonlocal rejected
        async with async_engine:
            start = time.perf_counter()

            async def one(offset: float, query: AggregateQuery) -> None:
                nonlocal rejected
                delay = start + offset - time.perf_counter()
                if delay > 0:
                    await asyncio.sleep(delay)
                try:
                    await async_engine.execute(query, table=table)
                except Overloaded:
                    rejected += 1
                    return
                latencies.append(time.perf_counter() - (start + offset))

            await asyncio.gather(
                *(one(float(offset), query) for offset, query in zip(offsets, issued))
            )
            return time.perf_counter() - start

    duration = asyncio.run(drive())
    completed = len(latencies)
    if latencies:
        p50, p99 = np.percentile(np.array(latencies), [50.0, 99.0])
        p50_ms, p99_ms = float(p50) * 1e3, float(p99) * 1e3
    else:
        p50_ms = p99_ms = float("nan")
    return AsyncWorkloadReport(
        n_requests=total,
        completed=completed,
        rejected=rejected,
        coalesced=async_engine.stats().coalesced,
        duration_seconds=duration,
        offered_qps=rate,
        achieved_qps=completed / duration if duration > 0 else float("nan"),
        p50_latency_ms=p50_ms,
        p99_latency_ms=p99_ms,
    )


def _evaluate_timed_workload(
    queries: Iterable[AggregateQuery],
    engine: ExactEngine,
    ground_truth: Sequence[float] | None,
    batch: bool,
    run_one,
    run_batch,
) -> WorkloadMetrics:
    """Shared timing/record assembly for the served and sharded modes."""
    queries = list(queries)
    if ground_truth is None:
        ground_truth = ground_truths(engine, queries)
    if len(ground_truth) != len(queries):
        raise ValueError("ground_truth length must match the number of queries")
    if batch:
        start = time.perf_counter()
        results = run_batch(queries)
        per_query = (time.perf_counter() - start) / max(1, len(queries))
        latencies = [per_query] * len(queries)
    else:
        results = []
        latencies = []
        for query in queries:
            start = time.perf_counter()
            results.append(run_one(query))
            latencies.append(time.perf_counter() - start)
    records = [
        QueryRecord(query=query, truth=truth, result=result, latency_seconds=latency)
        for query, truth, result, latency in zip(
            queries, ground_truth, results, latencies
        )
    ]
    return WorkloadMetrics.from_records(records)


def run_comparison(
    dataset: DatasetSpec | str,
    workload: WorkloadSpec,
    synopsis_factories: Dict[str, Callable[[DatasetSpec], object]],
    n_rows: int | None = None,
    truths: Sequence[float] | None = None,
) -> ComparisonRun:
    """Build and evaluate several synopses on the same dataset and workload.

    Parameters
    ----------
    dataset:
        A loaded :class:`~repro.data.loaders.DatasetSpec` or a dataset name
        (loaded with ``n_rows``).
    workload:
        The query workload to evaluate.
    synopsis_factories:
        Mapping from display name to a factory ``DatasetSpec -> synopsis``.
        The factory's wall-clock time is recorded as the build cost (falling
        back to a synopsis-reported ``build_seconds`` when present and larger,
        e.g. when the factory reuses a cached structure).
    n_rows:
        Row count when ``dataset`` is given by name.
    truths:
        Optional precomputed ground truths for the workload.
    """
    spec = (
        dataset if isinstance(dataset, DatasetSpec) else load_dataset(dataset, n_rows)
    )
    engine = ExactEngine(spec.table)
    queries = list(workload.queries)
    if truths is None:
        truths = ground_truths(engine, queries)

    evaluations = []
    for name, factory in synopsis_factories.items():
        start = time.perf_counter()
        synopsis = factory(spec)
        build_seconds = time.perf_counter() - start
        reported = getattr(synopsis, "build_seconds", 0.0)
        build_seconds = max(build_seconds, reported)
        storage = int(getattr(synopsis, "storage_bytes", lambda: 0)())
        metrics = evaluate_workload(synopsis, queries, engine, ground_truth=truths)
        evaluations.append(
            SynopsisEvaluation(
                name=name,
                build_seconds=build_seconds,
                storage_bytes=storage,
                metrics=metrics,
            )
        )
    return ComparisonRun(
        dataset=spec.table.name, workload=workload, evaluations=tuple(evaluations)
    )
