"""Formatting experiment results as plain-text / markdown tables.

Every experiment in :mod:`repro.evaluation.experiments` returns an
:class:`ExperimentResult`: a set of named sections, each a header row plus
data rows.  The benchmark harness prints these with :func:`render_result`
so the console output mirrors the corresponding table or figure of the paper.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

__all__ = ["Section", "ExperimentResult", "format_table", "render_result", "fmt"]


def fmt(value: object, precision: int = 4) -> str:
    """Format one cell: floats compactly, NaN as '-', everything else via str."""
    if isinstance(value, float):
        if math.isnan(value):
            return "-"
        if value != 0 and abs(value) < 10 ** (-precision):
            return f"{value:.2e}"
        return f"{value:.{precision}g}"
    return str(value)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render an aligned plain-text table."""
    str_rows = [[fmt(cell) for cell in row] for row in rows]
    widths = [
        max(len(str(header)), *(len(row[i]) for row in str_rows))
        if str_rows
        else len(str(header))
        for i, header in enumerate(headers)
    ]
    lines = []
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


@dataclass(frozen=True)
class Section:
    """One table of an experiment result."""

    title: str
    headers: tuple[str, ...]
    rows: tuple[tuple[object, ...], ...]

    def to_text(self) -> str:
        """Render the section as a titled plain-text table."""
        return f"{self.title}\n{format_table(self.headers, self.rows)}"


@dataclass(frozen=True)
class ExperimentResult:
    """A named experiment (one paper table or figure) and its sections."""

    name: str
    description: str
    sections: tuple[Section, ...]

    def section(self, title: str) -> Section:
        """Look up a section by title."""
        for section in self.sections:
            if section.title == title:
                return section
        known = ", ".join(section.title for section in self.sections)
        raise KeyError(f"no section titled {title!r}; available: {known}")

    def to_text(self) -> str:
        """Render the whole experiment as plain text."""
        parts = [f"=== {self.name} ===", self.description, ""]
        for section in self.sections:
            parts.append(section.to_text())
            parts.append("")
        return "\n".join(parts)


def render_result(result: ExperimentResult) -> str:
    """Render and return the experiment's text (also convenient to print)."""
    return result.to_text()
