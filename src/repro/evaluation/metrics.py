"""Evaluation metrics (Section 5.1.2).

The paper reports three metrics per workload:

* **relative error** — |estimate - truth| / |truth|, summarized by the median
  over the workload's queries;
* **CI ratio** — half the confidence interval divided by the truth, again
  summarized by the median; and
* **skip rate** — the fraction of dataset tuples whose contribution was
  resolved without touching samples (only meaningful for PASS-style synopses).

:func:`evaluate_workload` runs a synopsis over a workload against the exact
engine and produces a :class:`WorkloadMetrics` summary plus the per-query
records the harness uses for latency percentiles.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Iterable, Protocol, Sequence

import numpy as np

from repro.query.query import AggregateQuery, ExactEngine
from repro.result import AQPResult

__all__ = [
    "QueryRecord",
    "WorkloadMetrics",
    "relative_error",
    "ci_ratio",
    "nan_median",
    "evaluate_workload",
]


class SupportsQuery(Protocol):
    """Anything with a ``query(AggregateQuery) -> AQPResult`` method."""

    def query(self, query: AggregateQuery) -> AQPResult:  # pragma: no cover - protocol
        ...


def relative_error(estimate: float, truth: float) -> float:
    """|estimate - truth| / |truth| with the same conventions as the paper.

    A zero ground truth with a zero estimate counts as zero error; a zero
    ground truth with a non-zero estimate counts as infinite error; NaN
    estimates propagate NaN (and are excluded by :func:`nan_median`).
    """
    if math.isnan(estimate) or math.isnan(truth):
        return float("nan")
    if truth == 0.0:
        return 0.0 if estimate == 0.0 else float("inf")
    return abs(estimate - truth) / abs(truth)


def ci_ratio(half_width: float, truth: float) -> float:
    """Half CI width over the ground truth (NaN when undefined)."""
    if math.isnan(half_width) or math.isnan(truth) or truth == 0.0:
        return float("nan")
    return abs(half_width) / abs(truth)


def nan_median(values: Iterable[float]) -> float:
    """Median ignoring NaN and infinite entries (NaN when nothing remains)."""
    finite = [value for value in values if math.isfinite(value)]
    if not finite:
        return float("nan")
    return float(np.median(finite))


def nan_mean(values: Iterable[float]) -> float:
    """Mean ignoring NaN and infinite entries (NaN when nothing remains)."""
    finite = [value for value in values if math.isfinite(value)]
    if not finite:
        return float("nan")
    return float(np.mean(finite))


@dataclass(frozen=True)
class QueryRecord:
    """Per-query evaluation record."""

    query: AggregateQuery
    truth: float
    result: AQPResult
    latency_seconds: float

    @property
    def relative_error(self) -> float:
        """Relative error of this query's estimate."""
        return relative_error(self.result.estimate, self.truth)

    @property
    def ci_ratio(self) -> float:
        """CI ratio of this query's confidence interval."""
        return ci_ratio(self.result.ci_half_width, self.truth)

    @property
    def skip_rate(self) -> float:
        """Fraction of touched tuples resolved without samples.

        ``skipped / (skipped + processed)``; PASS-style synopses report the
        dataset tuples they never needed to sample, so this closely tracks the
        paper's skip rate (exact per-query values are available from
        :meth:`repro.core.pass_synopsis.PASSSynopsis.skip_rate`).
        """
        total = self.result.tuples_skipped + self.result.tuples_processed
        if total == 0:
            return 0.0
        return self.result.tuples_skipped / total


@dataclass(frozen=True)
class WorkloadMetrics:
    """Summary of a synopsis over one workload."""

    n_queries: int
    median_relative_error: float
    median_ci_ratio: float
    mean_skip_rate: float
    mean_tuples_processed: float
    mean_latency_ms: float
    max_latency_ms: float
    ci_coverage: float
    hard_bound_coverage: float
    records: tuple[QueryRecord, ...] = field(repr=False, default=())

    @classmethod
    def from_records(cls, records: Sequence[QueryRecord]) -> "WorkloadMetrics":
        """Aggregate per-query records into the paper's summary metrics."""
        if not records:
            raise ValueError("cannot summarize an empty workload")
        covered = [r for r in records if not math.isnan(r.result.ci_half_width)]
        coverage = (
            float(np.mean([r.result.contains_truth(r.truth) for r in covered]))
            if covered
            else float("nan")
        )
        hard_cov = float(
            np.mean([r.result.within_hard_bounds(r.truth) for r in records])
        )
        return cls(
            n_queries=len(records),
            median_relative_error=nan_median(r.relative_error for r in records),
            median_ci_ratio=nan_median(r.ci_ratio for r in records),
            mean_skip_rate=nan_mean(r.skip_rate for r in records),
            mean_tuples_processed=nan_mean(
                float(r.result.tuples_processed) for r in records
            ),
            mean_latency_ms=nan_mean(r.latency_seconds * 1e3 for r in records),
            max_latency_ms=max(r.latency_seconds * 1e3 for r in records),
            ci_coverage=coverage,
            hard_bound_coverage=hard_cov,
            records=tuple(records),
        )


def evaluate_workload(
    synopsis: SupportsQuery,
    queries: Iterable[AggregateQuery],
    engine: ExactEngine,
    ground_truth: Sequence[float] | None = None,
) -> WorkloadMetrics:
    """Run every query through a synopsis and summarize against the truth.

    Parameters
    ----------
    synopsis:
        Any object exposing ``query(AggregateQuery) -> AQPResult``.
    queries:
        The workload.
    engine:
        Exact engine used to compute ground truths when ``ground_truth`` is
        not supplied.
    ground_truth:
        Optional precomputed exact answers aligned with ``queries`` (sharing
        them across synopses avoids recomputing full scans).
    """
    queries = list(queries)
    if ground_truth is None:
        ground_truth = [engine.execute(query) for query in queries]
    if len(ground_truth) != len(queries):
        raise ValueError("ground_truth length must match the number of queries")
    records = []
    for query, truth in zip(queries, ground_truth):
        start = time.perf_counter()
        result = synopsis.query(query)
        latency = time.perf_counter() - start
        records.append(
            QueryRecord(
                query=query, truth=truth, result=result, latency_seconds=latency
            )
        )
    return WorkloadMetrics.from_records(records)
