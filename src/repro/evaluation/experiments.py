"""Reproductions of every table and figure in the paper's evaluation (Section 5).

Each public function regenerates one experiment and returns an
:class:`~repro.evaluation.reporting.ExperimentResult` whose sections mirror
the corresponding table or figure:

=============================  ==================================================
Function                        Paper artifact
=============================  ==================================================
``table1_accuracy``             Table 1 — accuracy & cost of US/ST/AQP++/PASS
``figure3_error_vs_partitions`` Figure 3 — error vs number of partitions
``figure4_error_vs_sample_rate``Figure 4 — error vs sample rate
``figure5_ci_vs_sample_rate``   Figure 5 — CI ratio vs sample rate
``figure6_adp_vs_eq_adversarial`` Figure 6 — ADP vs EQ on the adversarial data
``figure7_adp_vs_eq_real``      Figure 7 — ADP vs EQ, challenging queries
``figure8_multidim``            Figure 8 — KD-PASS vs KD-US, 1D–5D templates
``figure9_workload_shift``      Figure 9 — 2-D aggregates answering 1D–5D
``table2_end_to_end``           Table 2 — PASS vs VerdictDB vs DeepDB
``table3_preprocessing_cost``   Table 3 — cost / latency / error vs k
=============================  ==================================================

plus the ablations DESIGN.md calls out (`ablation_*` functions).

Every function takes scaled-down default sizes so the whole suite finishes in
minutes on a laptop; pass the paper's original sizes (3M–7.7M rows, 2000
queries, 1024 leaves) to reproduce at full scale.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Sequence

import numpy as np

from repro.baselines.aqp_pp import AQPPlusPlus
from repro.baselines.deepdb_sim import DeepDBModel
from repro.baselines.verdictdb_sim import VerdictDBScramble
from repro.core.builder import build_pass
from repro.core.config import PASSConfig
from repro.data.loaders import DatasetSpec, load_dataset
from repro.evaluation.harness import run_comparison
from repro.evaluation.metrics import evaluate_workload, nan_mean
from repro.evaluation.reporting import ExperimentResult, Section
from repro.partitioning.kdtree import kd_partition
from repro.query.aggregates import AggregateType
from repro.query.query import ExactEngine
from repro.query.workload import (
    WorkloadSpec,
    challenging_queries,
    random_range_queries,
    template_queries,
)

__all__ = [
    "DEFAULT_DATASETS",
    "table1_accuracy",
    "figure3_error_vs_partitions",
    "figure4_error_vs_sample_rate",
    "figure5_ci_vs_sample_rate",
    "figure6_adp_vs_eq_adversarial",
    "figure7_adp_vs_eq_real",
    "figure8_multidim",
    "figure9_workload_shift",
    "table2_end_to_end",
    "table3_preprocessing_cost",
    "ablation_partitioners",
    "ablation_zero_variance_rule",
    "ablation_sample_allocation",
    "ablation_opt_sample_size",
]

#: The three "real" datasets of Section 5.1.1 (surrogate generators).
DEFAULT_DATASETS = ("intel", "instacart", "nyc")


def _restrict_1d(spec: DatasetSpec) -> DatasetSpec:
    """Restrict a dataset spec to its first predicate column.

    The paper's 1-D experiments (Table 1, Figures 3–7, Table 3) constrain a
    single predicate column even on the NYC dataset; without this restriction
    the builders would treat NYC as a 5-dimensional problem and switch to the
    k-d partitioners.
    """
    return DatasetSpec(
        table=spec.table,
        value_column=spec.value_column,
        predicate_columns=(spec.default_predicate_column,),
    )


def _load_1d(name: str, n_rows: int) -> DatasetSpec:
    """Load a dataset restricted to its first predicate column."""
    return _restrict_1d(load_dataset(name, n_rows))


# ----------------------------------------------------------------------------
# Synopsis factories shared by several experiments
# ----------------------------------------------------------------------------
def _pass_factory(
    n_partitions: int,
    sample_rate: float,
    partitioner: str = "adp",
    mode: str = "ess",
    bss_multiplier: float = 1.0,
    seed: int = 0,
    **config_overrides,
) -> Callable[[DatasetSpec], object]:
    """Factory building a PASS synopsis for a dataset spec."""

    def factory(spec: DatasetSpec) -> object:
        config = PASSConfig(
            n_partitions=n_partitions,
            sample_rate=sample_rate,
            partitioner=partitioner,
            mode=mode,
            bss_multiplier=bss_multiplier,
            seed=seed,
            **config_overrides,
        )
        return build_pass(spec.table, spec.value_column, spec.predicate_columns, config)

    return factory


def _uniform_factory(
    sample_rate: float, seed: int = 0
) -> Callable[[DatasetSpec], object]:
    """Factory for the uniform-sampling baseline."""

    def factory(spec: DatasetSpec) -> object:
        from repro.sampling.uniform import UniformSampleSynopsis

        return UniformSampleSynopsis(
            spec.table,
            spec.value_column,
            spec.predicate_columns,
            sample_rate=sample_rate,
            rng=seed,
        )

    return factory


def _stratified_factory(
    n_strata: int, sample_rate: float, seed: int = 0
) -> Callable[[DatasetSpec], object]:
    """Factory for the equal-depth stratified-sampling baseline."""

    def factory(spec: DatasetSpec) -> object:
        from repro.sampling.stratified import (
            StratifiedSampleSynopsis,
            equal_depth_boxes,
        )

        boxes = equal_depth_boxes(spec.table, spec.default_predicate_column, n_strata)
        return StratifiedSampleSynopsis(
            spec.table,
            spec.value_column,
            spec.predicate_columns,
            boxes,
            sample_rate=sample_rate,
            rng=seed,
        )

    return factory


def _aqp_pp_factory(
    n_partitions: int, sample_rate: float, seed: int = 0
) -> Callable[[DatasetSpec], object]:
    """Factory for the AQP++ baseline."""

    def factory(spec: DatasetSpec) -> object:
        return AQPPlusPlus(
            spec.table,
            spec.value_column,
            spec.predicate_columns,
            n_partitions=n_partitions,
            sample_rate=sample_rate,
            rng=seed,
        )

    return factory


def _standard_factories(
    n_partitions: int, sample_rate: float, seed: int = 0
) -> Dict[str, Callable[[DatasetSpec], object]]:
    """The four systems compared throughout Figures 3–5: PASS, US, ST, AQP++."""
    return {
        "PASS": _pass_factory(n_partitions, sample_rate, seed=seed),
        "US": _uniform_factory(sample_rate, seed=seed),
        "ST": _stratified_factory(n_partitions, sample_rate, seed=seed),
        "AQP++": _aqp_pp_factory(n_partitions, sample_rate, seed=seed),
    }


def _workload(
    spec: DatasetSpec,
    n_queries: int,
    agg: AggregateType | str = AggregateType.SUM,
    seed: int = 1,
    min_fraction: float = 0.05,
    max_fraction: float = 0.5,
) -> WorkloadSpec:
    """The paper's random range-query workload over the first predicate column.

    Queries span between 5% and 50% of the sorted predicate values by default;
    at the scaled-down dataset sizes this keeps per-query sample counts large
    enough for the error medians to be stable across runs.
    """
    return random_range_queries(
        spec.table,
        spec.value_column,
        [spec.default_predicate_column],
        n_queries=n_queries,
        agg=agg,
        rng=seed,
        min_fraction=min_fraction,
        max_fraction=max_fraction,
    )


# ----------------------------------------------------------------------------
# Table 1 — headline accuracy and cost
# ----------------------------------------------------------------------------
def table1_accuracy(
    datasets: Sequence[str] = DEFAULT_DATASETS,
    n_rows: int = 100_000,
    n_queries: int = 200,
    sample_rate: float = 0.005,
    n_partitions: int = 64,
    seed: int = 0,
) -> ExperimentResult:
    """Table 1: median relative error of all systems for COUNT / SUM / AVG.

    Six systems are compared on every dataset: uniform sampling (US),
    stratified sampling (ST), AQP++, PASS in ESS mode, and PASS in BSS mode
    with 2x and 10x the uniform sampling storage.
    """
    factories: Dict[str, Callable[[DatasetSpec], object]] = {
        "US": _uniform_factory(sample_rate, seed),
        "ST": _stratified_factory(n_partitions, sample_rate, seed),
        "AQP++": _aqp_pp_factory(n_partitions, sample_rate, seed),
        "PASS-ESS": _pass_factory(n_partitions, sample_rate, seed=seed),
        "PASS-BSS2x": _pass_factory(
            n_partitions, sample_rate, mode="bss", bss_multiplier=2.0, seed=seed
        ),
        "PASS-BSS10x": _pass_factory(
            n_partitions, sample_rate, mode="bss", bss_multiplier=10.0, seed=seed
        ),
    }
    aggregates = (AggregateType.COUNT, AggregateType.SUM, AggregateType.AVG)

    error_rows: Dict[AggregateType, Dict[str, list[float]]] = {
        agg: {name: [] for name in factories} for agg in aggregates
    }
    build_costs: Dict[str, list[float]] = {name: [] for name in factories}

    for dataset_name in datasets:
        spec = _load_1d(dataset_name, n_rows)
        engine = ExactEngine(spec.table)
        base_workload = _workload(spec, n_queries, AggregateType.SUM, seed=seed + 1)
        synopses = {}
        for name, factory in factories.items():
            start = time.perf_counter()
            synopsis = factory(spec)
            elapsed = time.perf_counter() - start
            synopses[name] = synopsis
            build_costs[name].append(
                max(elapsed, getattr(synopsis, "build_seconds", 0.0))
            )
        for agg in aggregates:
            workload = base_workload.with_aggregate(agg)
            truths = [engine.execute(query) for query in workload.queries]
            for name, synopsis in synopses.items():
                metrics = evaluate_workload(
                    synopsis, workload.queries, engine, ground_truth=truths
                )
                error_rows[agg][name].append(metrics.median_relative_error)

    cost_section = Section(
        title="Mean construction cost (seconds)",
        headers=("Approach", "Mean cost (s)"),
        rows=tuple(
            (name, float(np.mean(costs))) for name, costs in build_costs.items()
        ),
    )
    sections = [cost_section]
    for agg in aggregates:
        rows = []
        for name in factories:
            rows.append((name, *[value for value in error_rows[agg][name]]))
        sections.append(
            Section(
                title=f"Median relative error — {agg.value}",
                headers=("Approach", *datasets),
                rows=tuple(rows),
            )
        )
    return ExperimentResult(
        name="Table 1",
        description=(
            f"{n_queries} random queries per dataset, {n_rows} rows, "
            f"{n_partitions} partitions, {sample_rate:.2%} sample rate."
        ),
        sections=tuple(sections),
    )


# ----------------------------------------------------------------------------
# Figures 3–5 — error / CI sweeps
# ----------------------------------------------------------------------------
def figure3_error_vs_partitions(
    datasets: Sequence[str] = DEFAULT_DATASETS,
    partition_counts: Sequence[int] = (4, 8, 16, 32, 64, 128),
    n_rows: int = 100_000,
    n_queries: int = 200,
    sample_rate: float = 0.005,
    seed: int = 0,
) -> ExperimentResult:
    """Figure 3: median relative error of SUM queries vs number of partitions."""
    sections = []
    for dataset_name in datasets:
        spec = _load_1d(dataset_name, n_rows)
        workload = _workload(spec, n_queries, AggregateType.SUM, seed=seed + 1)
        engine = ExactEngine(spec.table)
        truths = [engine.execute(query) for query in workload.queries]
        rows = []
        for n_partitions in partition_counts:
            run = run_comparison(
                spec,
                workload,
                _standard_factories(n_partitions, sample_rate, seed),
                truths=truths,
            )
            rows.append(
                (
                    n_partitions,
                    *[
                        run.evaluation(name).metrics.median_relative_error
                        for name in ("PASS", "US", "ST", "AQP++")
                    ],
                )
            )
        sections.append(
            Section(
                title=f"{dataset_name}: median relative error vs partitions",
                headers=("Partitions", "PASS", "US", "ST", "AQP++"),
                rows=tuple(rows),
            )
        )
    return ExperimentResult(
        name="Figure 3",
        description=(
            f"Median relative error of {n_queries} random SUM queries, "
            f"sample rate {sample_rate:.2%}, varying the number of partitions."
        ),
        sections=tuple(sections),
    )


def _sample_rate_sweep(
    datasets: Sequence[str],
    sample_rates: Sequence[float],
    n_rows: int,
    n_queries: int,
    n_partitions: int,
    seed: int,
) -> Dict[str, list[tuple[float, Dict[str, object]]]]:
    """Shared runner behind Figures 4 and 5 (one sweep, two read-outs)."""
    sweep: Dict[str, list[tuple[float, Dict[str, object]]]] = {}
    for dataset_name in datasets:
        spec = _load_1d(dataset_name, n_rows)
        workload = _workload(spec, n_queries, AggregateType.SUM, seed=seed + 1)
        engine = ExactEngine(spec.table)
        truths = [engine.execute(query) for query in workload.queries]
        rows = []
        for rate in sample_rates:
            run = run_comparison(
                spec,
                workload,
                _standard_factories(n_partitions, rate, seed),
                truths=truths,
            )
            rows.append(
                (
                    rate,
                    {
                        name: run.evaluation(name).metrics
                        for name in ("PASS", "US", "ST", "AQP++")
                    },
                )
            )
        sweep[dataset_name] = rows
    return sweep


def figure4_error_vs_sample_rate(
    datasets: Sequence[str] = DEFAULT_DATASETS,
    sample_rates: Sequence[float] = (0.1, 0.25, 0.5, 0.75, 1.0),
    n_rows: int = 50_000,
    n_queries: int = 150,
    n_partitions: int = 64,
    seed: int = 0,
) -> ExperimentResult:
    """Figure 4: median relative error of SUM queries vs sample rate."""
    sweep = _sample_rate_sweep(
        datasets, sample_rates, n_rows, n_queries, n_partitions, seed
    )
    sections = []
    for dataset_name, rows in sweep.items():
        sections.append(
            Section(
                title=f"{dataset_name}: median relative error vs sample rate",
                headers=("Sample rate", "PASS", "US", "ST", "AQP++"),
                rows=tuple(
                    (
                        rate,
                        *[
                            metrics[name].median_relative_error
                            for name in ("PASS", "US", "ST", "AQP++")
                        ],
                    )
                    for rate, metrics in rows
                ),
            )
        )
    return ExperimentResult(
        name="Figure 4",
        description=(
            f"Median relative error of {n_queries} random SUM queries with "
            f"{n_partitions} partitions, varying the sample rate."
        ),
        sections=tuple(sections),
    )


def figure5_ci_vs_sample_rate(
    datasets: Sequence[str] = DEFAULT_DATASETS,
    sample_rates: Sequence[float] = (0.1, 0.25, 0.5, 0.75, 1.0),
    n_rows: int = 50_000,
    n_queries: int = 150,
    n_partitions: int = 64,
    seed: int = 0,
) -> ExperimentResult:
    """Figure 5: median confidence-interval ratio of SUM queries vs sample rate."""
    sweep = _sample_rate_sweep(
        datasets, sample_rates, n_rows, n_queries, n_partitions, seed
    )
    sections = []
    for dataset_name, rows in sweep.items():
        sections.append(
            Section(
                title=f"{dataset_name}: median CI ratio vs sample rate",
                headers=("Sample rate", "PASS", "US", "ST", "AQP++"),
                rows=tuple(
                    (
                        rate,
                        *[
                            metrics[name].median_ci_ratio
                            for name in ("PASS", "US", "ST", "AQP++")
                        ],
                    )
                    for rate, metrics in rows
                ),
            )
        )
    return ExperimentResult(
        name="Figure 5",
        description=(
            f"Median CI ratio of {n_queries} random SUM queries with "
            f"{n_partitions} partitions, varying the sample rate."
        ),
        sections=tuple(sections),
    )


# ----------------------------------------------------------------------------
# Figures 6–7 — ADP vs equal-depth partitioning
# ----------------------------------------------------------------------------
def _adp_vs_eq_rows(
    spec: DatasetSpec,
    workload: WorkloadSpec,
    partition_counts: Sequence[int],
    sample_rate: float,
    seed: int,
) -> list[tuple[object, ...]]:
    """Median CI-ratio rows comparing the ADP and EQ partitioners."""
    engine = ExactEngine(spec.table)
    truths = [engine.execute(query) for query in workload.queries]
    rows = []
    for n_partitions in partition_counts:
        run = run_comparison(
            spec,
            workload,
            {
                "ADP": _pass_factory(
                    n_partitions, sample_rate, partitioner="adp", seed=seed
                ),
                "EQ": _pass_factory(
                    n_partitions, sample_rate, partitioner="equal", seed=seed
                ),
            },
            truths=truths,
        )
        rows.append(
            (
                n_partitions,
                run.evaluation("ADP").metrics.median_ci_ratio,
                run.evaluation("EQ").metrics.median_ci_ratio,
                run.evaluation("ADP").metrics.median_relative_error,
                run.evaluation("EQ").metrics.median_relative_error,
            )
        )
    return rows


def figure6_adp_vs_eq_adversarial(
    partition_counts: Sequence[int] = (4, 8, 16, 32, 64, 128),
    n_rows: int = 100_000,
    n_queries: int = 200,
    sample_rate: float = 0.005,
    seed: int = 0,
) -> ExperimentResult:
    """Figure 6: ADP vs EQ on the synthetic adversarial dataset.

    The left plot uses random queries over the whole dataset; the right plot
    uses "challenging" queries whose predicates fall entirely inside the
    normally-distributed tail (the paper's "last 125K tuples").
    """
    spec = _load_1d("adversarial", n_rows)
    random_workload = _workload(spec, n_queries, AggregateType.SUM, seed=seed + 1)
    # Challenging queries: random range queries restricted to the final 12.5%
    # of the key domain, i.e. the region carrying all of the variance.
    keys = spec.table.column(spec.default_predicate_column)
    tail_start = float(np.quantile(keys, 0.875))
    tail_table = spec.table.select(keys >= tail_start, name="adversarial_tail")
    challenging_workload = random_range_queries(
        tail_table,
        spec.value_column,
        [spec.default_predicate_column],
        n_queries=n_queries,
        agg=AggregateType.SUM,
        rng=seed + 2,
        min_fraction=0.05,
        max_fraction=0.8,
    )
    headers = ("Partitions", "ADP CI ratio", "EQ CI ratio", "ADP rel err", "EQ rel err")
    sections = (
        Section(
            title="Random queries",
            headers=headers,
            rows=tuple(
                _adp_vs_eq_rows(
                    spec, random_workload, partition_counts, sample_rate, seed
                )
            ),
        ),
        Section(
            title="Challenging queries",
            headers=headers,
            rows=tuple(
                _adp_vs_eq_rows(
                    spec, challenging_workload, partition_counts, sample_rate, seed
                )
            ),
        ),
    )
    return ExperimentResult(
        name="Figure 6",
        description=(
            "ADP vs equal-depth partitioning on the adversarial dataset "
            f"({n_rows} rows; first 87.5% zeros, normal tail)."
        ),
        sections=sections,
    )


def figure7_adp_vs_eq_real(
    datasets: Sequence[str] = DEFAULT_DATASETS,
    partition_counts: Sequence[int] = (4, 8, 16, 32, 64, 128),
    n_rows: int = 100_000,
    n_queries: int = 200,
    sample_rate: float = 0.005,
    seed: int = 0,
) -> ExperimentResult:
    """Figure 7: ADP vs EQ on challenging queries of the three real-like datasets."""
    headers = ("Partitions", "ADP CI ratio", "EQ CI ratio", "ADP rel err", "EQ rel err")
    sections = []
    for dataset_name in datasets:
        spec = _load_1d(dataset_name, n_rows)
        workload = challenging_queries(
            spec.table,
            spec.value_column,
            spec.default_predicate_column,
            n_queries=n_queries,
            agg=AggregateType.SUM,
            rng=seed + 2,
        )
        sections.append(
            Section(
                title=f"{dataset_name}: challenging queries",
                headers=headers,
                rows=tuple(
                    _adp_vs_eq_rows(spec, workload, partition_counts, sample_rate, seed)
                ),
            )
        )
    return ExperimentResult(
        name="Figure 7",
        description=(
            "ADP vs equal-depth partitioning on challenging (max-variance window) "
            "queries of the three datasets."
        ),
        sections=tuple(sections),
    )


# ----------------------------------------------------------------------------
# Figures 8–9 — multi-dimensional templates and workload shift
# ----------------------------------------------------------------------------
def figure8_multidim(
    n_rows: int = 100_000,
    n_leaves: int = 256,
    n_queries: int = 150,
    sample_rate: float = 0.005,
    max_dimensions: int = 5,
    seed: int = 0,
) -> ExperimentResult:
    """Figure 8: KD-PASS vs KD-US on 1D–5D query templates over the NYC data."""
    spec = load_dataset("nyc", n_rows)
    engine = ExactEngine(spec.table)
    rows = []
    for dims in range(1, max_dimensions + 1):
        columns = list(spec.predicate_columns[:dims])
        workload = template_queries(
            spec.table,
            spec.value_column,
            spec.predicate_columns,
            n_dimensions=dims,
            n_queries=n_queries,
            agg=AggregateType.SUM,
            rng=seed + dims,
        )
        truths = [engine.execute(query) for query in workload.queries]

        kd_pass = build_pass(
            spec.table,
            spec.value_column,
            columns,
            PASSConfig(
                n_partitions=n_leaves,
                sample_rate=sample_rate,
                partitioner="kd",
                seed=seed,
            ),
        )
        kd_us = AQPPlusPlus(
            spec.table,
            spec.value_column,
            columns,
            n_partitions=n_leaves,
            sample_rate=sample_rate,
            rng=seed,
        )
        pass_metrics = evaluate_workload(kd_pass, workload.queries, engine, truths)
        us_metrics = evaluate_workload(kd_us, workload.queries, engine, truths)
        skip_rate = nan_mean(kd_pass.skip_rate(query) for query in workload.queries)
        rows.append(
            (
                f"{dims}D",
                pass_metrics.median_ci_ratio,
                us_metrics.median_ci_ratio,
                pass_metrics.median_relative_error,
                us_metrics.median_relative_error,
                skip_rate,
            )
        )
    return ExperimentResult(
        name="Figure 8",
        description=(
            f"Multi-dimensional query templates on the NYC dataset, {n_leaves} leaves, "
            f"{sample_rate:.2%} sample rate."
        ),
        sections=(
            Section(
                title="KD-PASS vs KD-US by query template",
                headers=(
                    "Template",
                    "KD-PASS CI ratio",
                    "KD-US CI ratio",
                    "KD-PASS rel err",
                    "KD-US rel err",
                    "KD-PASS skip rate",
                ),
                rows=tuple(rows),
            ),
        ),
    )


def figure9_workload_shift(
    n_rows: int = 100_000,
    n_leaves: int = 256,
    n_queries: int = 150,
    sample_rate: float = 0.005,
    built_dimensions: int = 2,
    max_dimensions: int = 5,
    seed: int = 0,
) -> ExperimentResult:
    """Figure 9: a synopsis built for the 2-D template answering 1D–5D templates.

    The leaf partitioning only spans the first ``built_dimensions`` predicate
    columns, but every leaf sample retains all predicate columns, so queries on
    unindexed columns are still answerable — with the data skipping limited to
    the shared attributes, exactly the workload-shift scenario of Section 5.4.1.
    """
    spec = load_dataset("nyc", n_rows)
    engine = ExactEngine(spec.table)
    built_columns = list(spec.predicate_columns[:built_dimensions])

    kd_result = kd_partition(
        spec.table,
        spec.value_column,
        built_columns,
        n_leaves,
        policy="max_variance",
        rng=seed,
    )
    kd_us_boxes = kd_partition(
        spec.table,
        spec.value_column,
        built_columns,
        n_leaves,
        policy="breadth_first",
        rng=seed,
    ).boxes

    kd_pass = build_pass(
        spec.table,
        spec.value_column,
        list(spec.predicate_columns),
        PASSConfig(
            n_partitions=n_leaves,
            sample_rate=sample_rate,
            partitioner="kd",
            seed=seed,
        ),
        leaf_boxes=kd_result.boxes,
    )
    kd_us = AQPPlusPlus(
        spec.table,
        spec.value_column,
        list(spec.predicate_columns),
        n_partitions=n_leaves,
        sample_rate=sample_rate,
        boxes=kd_us_boxes,
        rng=seed,
    )

    rows = []
    for dims in range(1, max_dimensions + 1):
        workload = template_queries(
            spec.table,
            spec.value_column,
            spec.predicate_columns,
            n_dimensions=dims,
            n_queries=n_queries,
            agg=AggregateType.SUM,
            rng=seed + dims,
        )
        truths = [engine.execute(query) for query in workload.queries]
        pass_metrics = evaluate_workload(kd_pass, workload.queries, engine, truths)
        us_metrics = evaluate_workload(kd_us, workload.queries, engine, truths)
        skip_rate = nan_mean(kd_pass.skip_rate(query) for query in workload.queries)
        rows.append(
            (
                f"{dims}D",
                pass_metrics.median_ci_ratio,
                us_metrics.median_ci_ratio,
                pass_metrics.median_relative_error,
                us_metrics.median_relative_error,
                skip_rate,
            )
        )
    return ExperimentResult(
        name="Figure 9",
        description=(
            f"Workload shift: aggregates built for the {built_dimensions}D template "
            f"answering 1D–{max_dimensions}D templates on the NYC dataset."
        ),
        sections=(
            Section(
                title="KD-PASS vs KD-US under workload shift",
                headers=(
                    "Template",
                    "KD-PASS CI ratio",
                    "KD-US CI ratio",
                    "KD-PASS rel err",
                    "KD-US rel err",
                    "KD-PASS skip rate",
                ),
                rows=tuple(rows),
            ),
        ),
    )


# ----------------------------------------------------------------------------
# Table 2 — end-to-end comparison with VerdictDB / DeepDB
# ----------------------------------------------------------------------------
def table2_end_to_end(
    n_rows: int = 100_000,
    n_queries: int = 150,
    sample_rate: float = 0.005,
    n_partitions: int = 64,
    kd_leaves: int = 256,
    max_dimensions: int = 5,
    seed: int = 0,
) -> ExperimentResult:
    """Table 2: PASS-BSS variants vs VerdictDB scrambles vs DeepDB models.

    Workloads: random 1-D queries on the three datasets plus the NYC 2D–5D
    templates.  The cost section reports mean query latency, synopsis storage,
    and construction time averaged over the workloads each system ran on.
    """
    workload_specs: list[tuple[str, DatasetSpec, WorkloadSpec, list[str]]] = []
    for dataset_name in DEFAULT_DATASETS:
        spec = _load_1d(dataset_name, n_rows)
        workload = _workload(spec, n_queries, AggregateType.SUM, seed=seed + 1)
        workload_specs.append(
            (dataset_name, spec, workload, [spec.default_predicate_column])
        )
    nyc_spec = load_dataset("nyc", n_rows)
    for dims in range(2, max_dimensions + 1):
        workload = template_queries(
            nyc_spec.table,
            nyc_spec.value_column,
            nyc_spec.predicate_columns,
            n_dimensions=dims,
            n_queries=n_queries,
            agg=AggregateType.SUM,
            rng=seed + dims,
        )
        workload_specs.append(
            (
                f"nyc-{dims}D",
                nyc_spec,
                workload,
                list(nyc_spec.predicate_columns[:dims]),
            )
        )

    def pass_bss(multiplier: float) -> Callable[[DatasetSpec, list[str]], object]:
        def factory(spec: DatasetSpec, columns: list[str]) -> object:
            partitioner = "adp" if len(columns) == 1 else "kd"
            leaves = n_partitions if len(columns) == 1 else kd_leaves
            return build_pass(
                spec.table,
                spec.value_column,
                columns,
                PASSConfig(
                    n_partitions=leaves,
                    sample_rate=sample_rate,
                    partitioner=partitioner,
                    mode="bss",
                    bss_multiplier=multiplier,
                    seed=seed,
                ),
            )

        return factory

    def verdict(ratio: float) -> Callable[[DatasetSpec, list[str]], object]:
        def factory(spec: DatasetSpec, columns: list[str]) -> object:
            return VerdictDBScramble(
                spec.table,
                spec.value_column,
                columns,
                scramble_ratio=ratio,
                rng=seed,
            )

        return factory

    def deepdb(ratio: float) -> Callable[[DatasetSpec, list[str]], object]:
        def factory(spec: DatasetSpec, columns: list[str]) -> object:
            return DeepDBModel(
                spec.table,
                spec.value_column,
                columns,
                training_ratio=ratio,
                rng=seed,
            )

        return factory

    systems: Dict[str, Callable[[DatasetSpec, list[str]], object]] = {
        "PASS-BSS1x": pass_bss(1.0),
        "PASS-BSS2x": pass_bss(2.0),
        "PASS-BSS10x": pass_bss(10.0),
        "VerdictDB-10%": verdict(0.1),
        "VerdictDB-100%": verdict(1.0),
        "DeepDB-10%": deepdb(0.1),
        "DeepDB-100%": deepdb(1.0),
    }

    latencies: Dict[str, list[float]] = {name: [] for name in systems}
    storages: Dict[str, list[float]] = {name: [] for name in systems}
    build_times: Dict[str, list[float]] = {name: [] for name in systems}
    errors: Dict[str, list[float]] = {name: [] for name in systems}
    workload_names = [name for name, *_ in workload_specs]

    for _, spec, workload, columns in workload_specs:
        engine = ExactEngine(spec.table)
        truths = [engine.execute(query) for query in workload.queries]
        for name, factory in systems.items():
            synopsis = factory(spec, columns)
            metrics = evaluate_workload(synopsis, workload.queries, engine, truths)
            latencies[name].append(metrics.mean_latency_ms)
            storages[name].append(
                getattr(synopsis, "storage_bytes", lambda: 0)() / (1024.0 * 1024.0)
            )
            build_times[name].append(getattr(synopsis, "build_seconds", 0.0))
            errors[name].append(metrics.median_relative_error)

    cost_rows = tuple(
        (
            name,
            float(np.mean(latencies[name])),
            float(np.mean(storages[name])),
            float(np.mean(build_times[name])),
        )
        for name in systems
    )
    error_rows = tuple(
        (name, *[errors[name][i] for i in range(len(workload_names))])
        for name in systems
    )
    return ExperimentResult(
        name="Table 2",
        description=(
            "End-to-end comparison of PASS (BSS storage budgets) with VerdictDB-style "
            "scrambles and DeepDB-style learned models."
        ),
        sections=(
            Section(
                title="Mean cost",
                headers=("Approach", "Latency (ms)", "Storage (MB)", "Build time (s)"),
                rows=cost_rows,
            ),
            Section(
                title="Median relative error",
                headers=("Approach", *workload_names),
                rows=error_rows,
            ),
        ),
    )


# ----------------------------------------------------------------------------
# Table 3 — preprocessing cost vs number of partitions
# ----------------------------------------------------------------------------
def table3_preprocessing_cost(
    partition_counts: Sequence[int] = (4, 8, 16, 32, 64, 128),
    n_rows: int = 100_000,
    n_queries: int = 200,
    sample_rate: float = 0.005,
    seed: int = 0,
) -> ExperimentResult:
    """Table 3: build cost, query latency, and accuracy of PASS as k grows."""
    spec = _load_1d("nyc", n_rows)
    engine = ExactEngine(spec.table)
    workload = _workload(spec, n_queries, AggregateType.SUM, seed=seed + 1)
    truths = [engine.execute(query) for query in workload.queries]
    rows = []
    for n_partitions in partition_counts:
        synopsis = _pass_factory(n_partitions, sample_rate, seed=seed)(spec)
        metrics = evaluate_workload(synopsis, workload.queries, engine, truths)
        rows.append(
            (
                n_partitions,
                synopsis.build_seconds,
                metrics.mean_latency_ms,
                metrics.max_latency_ms,
                metrics.median_relative_error,
            )
        )
    return ExperimentResult(
        name="Table 3",
        description=(
            "PASS preprocessing cost, query latency and accuracy on the NYC dataset "
            "as the number of partitions k grows (ADP partitioner)."
        ),
        sections=(
            Section(
                title="Cost and accuracy vs k",
                headers=(
                    "k",
                    "Build cost (s)",
                    "Mean latency (ms)",
                    "Max latency (ms)",
                    "Median rel err",
                ),
                rows=tuple(rows),
            ),
        ),
    )


# ----------------------------------------------------------------------------
# Ablations (DESIGN.md Section 5)
# ----------------------------------------------------------------------------
def ablation_partitioners(
    dataset: str = "intel",
    partitioners: Sequence[str] = ("adp", "equal", "hill"),
    n_rows: int = 100_000,
    n_queries: int = 200,
    n_partitions: int = 64,
    sample_rate: float = 0.005,
    seed: int = 0,
) -> ExperimentResult:
    """Ablation: the same PASS structure under different 1-D partitioners."""
    spec = _load_1d(dataset, n_rows)
    engine = ExactEngine(spec.table)
    random_workload = _workload(spec, n_queries, AggregateType.SUM, seed=seed + 1)
    hard_workload = challenging_queries(
        spec.table,
        spec.value_column,
        spec.default_predicate_column,
        n_queries=n_queries,
        agg=AggregateType.SUM,
        rng=seed + 2,
    )
    sections = []
    for title, workload in (
        ("Random queries", random_workload),
        ("Challenging queries", hard_workload),
    ):
        truths = [engine.execute(query) for query in workload.queries]
        rows = []
        for partitioner in partitioners:
            synopsis = _pass_factory(
                n_partitions, sample_rate, partitioner=partitioner, seed=seed
            )(spec)
            metrics = evaluate_workload(synopsis, workload.queries, engine, truths)
            rows.append(
                (
                    partitioner,
                    metrics.median_relative_error,
                    metrics.median_ci_ratio,
                    synopsis.build_seconds,
                )
            )
        sections.append(
            Section(
                title=title,
                headers=(
                    "Partitioner",
                    "Median rel err",
                    "Median CI ratio",
                    "Build (s)",
                ),
                rows=tuple(rows),
            )
        )
    return ExperimentResult(
        name="Ablation: partitioners",
        description=f"PASS accuracy on {dataset} under different leaf partitioners.",
        sections=tuple(sections),
    )


def ablation_zero_variance_rule(
    n_rows: int = 100_000,
    n_queries: int = 200,
    n_partitions: int = 64,
    sample_rate: float = 0.005,
    seed: int = 0,
) -> ExperimentResult:
    """Ablation: the 0-variance MCF rule on AVG queries over the adversarial data.

    The equal-depth partitioner is used here because it produces many pure
    constant-value partitions inside the zero region — exactly the nodes the
    0-variance shortcut is designed to skip.
    """
    spec = _load_1d("adversarial", n_rows)
    engine = ExactEngine(spec.table)
    workload = _workload(spec, n_queries, AggregateType.AVG, seed=seed + 1)
    truths = [engine.execute(query) for query in workload.queries]
    rows = []
    for label, enabled in (
        ("0-variance rule ON", True),
        ("0-variance rule OFF", False),
    ):
        synopsis = _pass_factory(
            n_partitions,
            sample_rate,
            partitioner="equal",
            seed=seed,
            zero_variance_rule=enabled,
        )(spec)
        metrics = evaluate_workload(synopsis, workload.queries, engine, truths)
        rows.append(
            (
                label,
                metrics.median_relative_error,
                metrics.median_ci_ratio,
                metrics.mean_tuples_processed,
            )
        )
    return ExperimentResult(
        name="Ablation: 0-variance rule",
        description=(
            "AVG queries on the adversarial dataset with and without the "
            "0-variance MCF shortcut (Section 3.4)."
        ),
        sections=(
            Section(
                title="AVG queries, adversarial dataset",
                headers=(
                    "Setting",
                    "Median rel err",
                    "Median CI ratio",
                    "Mean samples/query",
                ),
                rows=tuple(rows),
            ),
        ),
    )


def ablation_sample_allocation(
    dataset: str = "nyc",
    n_rows: int = 100_000,
    n_queries: int = 200,
    n_partitions: int = 64,
    sample_rate: float = 0.005,
    seed: int = 0,
) -> ExperimentResult:
    """Ablation: proportional vs equal per-leaf sample allocation (BSS mode)."""
    spec = _load_1d(dataset, n_rows)
    engine = ExactEngine(spec.table)
    workload = _workload(spec, n_queries, AggregateType.SUM, seed=seed + 1)
    truths = [engine.execute(query) for query in workload.queries]
    rows = []
    for allocation in ("proportional", "equal"):
        synopsis = _pass_factory(
            n_partitions,
            sample_rate,
            mode="bss",
            bss_multiplier=2.0,
            allocation=allocation,
            seed=seed,
        )(spec)
        metrics = evaluate_workload(synopsis, workload.queries, engine, truths)
        rows.append(
            (
                allocation,
                metrics.median_relative_error,
                metrics.median_ci_ratio,
                synopsis.sample_size,
            )
        )
    return ExperimentResult(
        name="Ablation: sample allocation",
        description=(
            f"Per-leaf sampling allocation policies on {dataset} (BSS 2x budget)."
        ),
        sections=(
            Section(
                title="Allocation policies",
                headers=(
                    "Allocation",
                    "Median rel err",
                    "Median CI ratio",
                    "Stored samples",
                ),
                rows=tuple(rows),
            ),
        ),
    )


def ablation_opt_sample_size(
    dataset: str = "nyc",
    opt_sample_sizes: Sequence[int] = (100, 250, 500, 1000, 2000),
    n_rows: int = 100_000,
    n_queries: int = 200,
    n_partitions: int = 64,
    sample_rate: float = 0.005,
    seed: int = 0,
) -> ExperimentResult:
    """Ablation: effect of the optimization sample size m on ADP quality."""
    spec = _load_1d(dataset, n_rows)
    engine = ExactEngine(spec.table)
    workload = challenging_queries(
        spec.table,
        spec.value_column,
        spec.default_predicate_column,
        n_queries=n_queries,
        agg=AggregateType.SUM,
        rng=seed + 2,
    )
    truths = [engine.execute(query) for query in workload.queries]
    rows = []
    for opt_sample_size in opt_sample_sizes:
        synopsis = _pass_factory(
            n_partitions, sample_rate, seed=seed, opt_sample_size=opt_sample_size
        )(spec)
        metrics = evaluate_workload(synopsis, workload.queries, engine, truths)
        rows.append(
            (
                opt_sample_size,
                metrics.median_relative_error,
                metrics.median_ci_ratio,
                synopsis.build_seconds,
            )
        )
    return ExperimentResult(
        name="Ablation: optimization sample size",
        description=(
            f"ADP partition quality on challenging {dataset} queries as the "
            "optimization sample size m grows."
        ),
        sections=(
            Section(
                title="Optimization sample size sweep",
                headers=("m", "Median rel err", "Median CI ratio", "Build (s)"),
                rows=tuple(rows),
            ),
        ),
    )
