"""Evaluation: metrics, the comparison harness, and per-figure experiments."""

from repro.evaluation.harness import (
    AsyncWorkloadReport,
    ComparisonRun,
    SynopsisEvaluation,
    arrival_offsets,
    evaluate_async_workload,
    evaluate_grouped_workload,
    evaluate_served_workload,
    evaluate_sharded_workload,
    run_comparison,
)
from repro.evaluation.metrics import (
    QueryRecord,
    WorkloadMetrics,
    ci_ratio,
    evaluate_workload,
    nan_median,
    relative_error,
)
from repro.evaluation.reporting import (
    ExperimentResult,
    Section,
    format_table,
    render_result,
)

__all__ = [
    "AsyncWorkloadReport",
    "ComparisonRun",
    "SynopsisEvaluation",
    "arrival_offsets",
    "evaluate_async_workload",
    "run_comparison",
    "evaluate_served_workload",
    "evaluate_sharded_workload",
    "evaluate_grouped_workload",
    "QueryRecord",
    "WorkloadMetrics",
    "ci_ratio",
    "evaluate_workload",
    "nan_median",
    "relative_error",
    "ExperimentResult",
    "Section",
    "format_table",
    "render_result",
]
